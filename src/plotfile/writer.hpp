#pragma once
/// \file writer.hpp
/// AMReX-native plotfile writer reproducing the exact output tree of the
/// paper's Fig. 2:
///
///   <plot_file>NNNNN/
///     Header                 top-level metadata
///     job_info               run metadata
///     Level_0/
///       Cell_H               per-level mesh metadata
///       Cell_D_00000         per-task FAB data (one file per owning rank)
///       Cell_D_00001
///     Level_1/ ...
///
/// A `Cell_D` file is created **only** for ranks that own at least one grid at
/// that level — the conditional the paper calls out ("a file is only produced
/// if there is data generated on a particular task at the corresponding mesh
/// level").
///
/// All real numbers in metadata are emitted in a fixed-width field so the
/// byte-exact `predict_plotfile` (no data touched) matches `write_plotfile`
/// exactly; the prediction path powers the paper-scale Fig. 11 reproduction.

#include <cstdint>
#include <string>
#include <vector>

#include "codec/stats.hpp"
#include "exec/engine.hpp"
#include "iostats/trace.hpp"
#include "mesh/distribution.hpp"
#include "mesh/geometry.hpp"
#include "mesh/multifab.hpp"
#include "pfs/backend.hpp"
#include "simmpi/comm.hpp"

namespace amrio::plotfile {

/// One level's data to plot (valid regions of `data` are written).
struct LevelPlotData {
  mesh::Geometry geom;
  const mesh::MultiFab* data = nullptr;
};

/// One level's *layout* (no data) for size prediction.
struct LevelLayout {
  mesh::Geometry geom;
  mesh::BoxArray ba;
  mesh::DistributionMapping dm;
};

struct PlotfileSpec {
  std::string dir;  ///< e.g. "sedov_2d_cyl_in_cart_plt00020"
  std::vector<std::string> var_names;
  double time = 0.0;
  std::int64_t step = 0;
  int ref_ratio = 2;
  std::string job_info;  ///< free text stored in the job_info file
  /// Aggregated MIF: partition each level's ranks into this many groups
  /// (staging::AggTopology); members ship their FAB payloads to the group's
  /// aggregator, which writes one `Cell_D_<group>` file holding the group's
  /// fabs in rank order (offsets in Cell_H point into it). 0 = classic
  /// one-file-per-owning-rank. Levels with fewer ranks than groups fall back
  /// to one group per rank. `predict_plotfile` honors the same setting.
  int aggregators = 0;
  /// Per-Cell_D codec hook: each rank's Cell_D chunk passes through this
  /// codec before it leaves the node — encoded bytes cross the aggregation
  /// link and fill `WriteStats::codec` / trace codec dimensions, while file
  /// contents stay raw (reader-compatible; the modeled PFS stores the
  /// decoded image). With `codec.smoothness < 0` (auto) the ebl model
  /// estimates smoothness from the rank's real FAB data; pin the smoothness
  /// for byte-exact codec parity with `predict_plotfile` (identity and
  /// lossless are always parity-exact, being pure size functions).
  codec::CodecSpec codec;
};

struct WriteStats {
  std::uint64_t total_bytes = 0;
  std::uint64_t metadata_bytes = 0;  ///< Header + job_info + Cell_H files
  std::uint64_t data_bytes = 0;      ///< Cell_D files
  std::uint64_t nfiles = 0;
  /// bytes per [level][rank] of Cell_D data (size nlevels × nranks).
  std::vector<std::vector<std::uint64_t>> rank_level_bytes;
  /// Codec accounting (one chunk per rank per level with data, keyed by
  /// spec.step / level; metadata is never compressed). Identity: encoded ==
  /// raw, zero cpu. Populated on rank 0.
  codec::CodecStats codec;
};

/// Write a multi-level plotfile (the WriteMultiLevelPlotfile path the paper
/// identifies in Castro) on an execution engine: each rank writes its own
/// `Cell_D` files (concurrently under `exec::SpmdEngine`, as fibers under
/// `exec::SerialEngine`), per-rank byte counts are gathered to rank 0, which
/// writes all metadata. One write body serves every execution mode, so the
/// engines are byte-identical by construction. Events are recorded into
/// `trace` when given, keyed by (spec.step, level, rank); metadata uses
/// level/rank = -1.
WriteStats write_plotfile(exec::Engine& engine, pfs::StorageBackend& backend,
                          const PlotfileSpec& spec,
                          const std::vector<LevelPlotData>& levels,
                          iostats::TraceRecorder* trace = nullptr);

/// Convenience: write on a fiber-scheduled SerialEngine sized to the widest
/// level distribution.
WriteStats write_plotfile(pfs::StorageBackend& backend, const PlotfileSpec& spec,
                          const std::vector<LevelPlotData>& levels,
                          iostats::TraceRecorder* trace = nullptr);

/// Byte-exact size prediction of write_plotfile for the same spec/layouts —
/// no field data is read or written, so it runs at paper scale (8192² and
/// beyond) in microseconds. When `trace` is given the same events are
/// recorded as a real write would produce.
WriteStats predict_plotfile(const PlotfileSpec& spec,
                            const std::vector<LevelLayout>& levels, int ncomp,
                            iostats::TraceRecorder* trace = nullptr);

/// Checkpoint variant (amr.check_file / amr.check_int): same N-to-N tree with
/// a checkpoint Header carrying restart state description.
WriteStats write_checkpoint(pfs::StorageBackend& backend,
                            const PlotfileSpec& spec,
                            const std::vector<LevelPlotData>& levels,
                            iostats::TraceRecorder* trace = nullptr);

/// Per-rank entry point for code already inside simmpi::run_spmd
/// (comm.size() must equal the DistributionMapping rank count). Runs the
/// same write body as the engine overloads; rank 0 returns the full
/// statistics, other ranks return stats with only their own contributions.
/// Byte-identical to write_plotfile (tested).
WriteStats write_plotfile_spmd(simmpi::Comm& comm, pfs::StorageBackend& backend,
                               const PlotfileSpec& spec,
                               const std::vector<LevelPlotData>& levels,
                               iostats::TraceRecorder* trace = nullptr);

/// Fixed-width (26 char) scientific rendering used for all reals in metadata.
std::string fixed_real(double v);

}  // namespace amrio::plotfile

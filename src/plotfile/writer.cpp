#include "plotfile/writer.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "codec/codec.hpp"
#include "plotfile/fab_io.hpp"
#include "staging/aggregator.hpp"
#include "util/assert.hpp"
#include "util/format.hpp"

namespace amrio::plotfile {

std::string fixed_real(double v) {
  char buf[64];
  // space flag reserves a column for the sign; precision 17 round-trips
  // doubles; width padding absorbs the 2-vs-3-digit exponent so every real
  // occupies exactly 26 characters and metadata sizes are data-independent.
  std::snprintf(buf, sizeof(buf), "% .17e", v);
  std::string s = buf;
  if (s.size() < 26) s.append(26 - s.size(), ' ');
  AMRIO_ENSURES(s.size() == 26);
  return s;
}

namespace {

struct FabRef {
  std::size_t box_index = 0;
  std::string file;       // basename within the level dir
  std::uint64_t offset = 0;
};

/// Per-level plan: which rank writes which boxes to which file, with offsets.
struct LevelPlan {
  std::vector<FabRef> fabs;                   // indexed by box index
  std::map<int, std::vector<std::size_t>> rank_boxes;  // rank -> box indices
  std::map<int, std::uint64_t> rank_bytes;    // Cell_D payload per rank
  /// Aggregated MIF only: group -> total Cell_D bytes (groups with data).
  std::map<int, std::uint64_t> group_bytes;
};

/// Effective aggregation group count for a level (never more than its ranks).
int level_groups(int aggregators, int level_ranks) {
  return std::min(aggregators, level_ranks);
}

LevelPlan plan_level(const mesh::BoxArray& ba, const mesh::DistributionMapping& dm,
                     int ncomp, int aggregators) {
  LevelPlan plan;
  plan.fabs.resize(ba.size());
  if (aggregators > 0) {
    // Aggregated MIF: one Cell_D file per aggregation group, holding member
    // fabs in rank order; the per-rank subtotals still drive the gather
    // cross-check in the write path.
    const auto topo = staging::AggTopology::make(
        dm.nranks(), level_groups(aggregators, dm.nranks()));
    for (int g = 0; g < topo.ngroups(); ++g) {
      const std::string file =
          "Cell_D_" + util::zero_pad(static_cast<std::uint64_t>(g), 5);
      std::uint64_t offset = 0;
      for (int rank : topo.members_of(g)) {
        auto boxes = dm.boxes_of(rank);
        if (boxes.empty()) continue;
        const std::uint64_t rank_start = offset;
        for (std::size_t bi : boxes) {
          plan.fabs[bi] = FabRef{bi, file, offset};
          offset += fab_disk_size(ba[bi], ncomp);
        }
        plan.rank_boxes[rank] = std::move(boxes);
        plan.rank_bytes[rank] = offset - rank_start;
      }
      if (offset > 0) plan.group_bytes[g] = offset;
    }
    return plan;
  }
  for (int rank = 0; rank < dm.nranks(); ++rank) {
    auto boxes = dm.boxes_of(rank);
    if (boxes.empty()) continue;  // no file for this task at this level
    const std::string file = "Cell_D_" + util::zero_pad(static_cast<std::uint64_t>(rank), 5);
    std::uint64_t offset = 0;
    for (std::size_t bi : boxes) {
      plan.fabs[bi] = FabRef{bi, file, offset};
      offset += fab_disk_size(ba[bi], ncomp);
    }
    plan.rank_boxes[rank] = std::move(boxes);
    plan.rank_bytes[rank] = offset;
  }
  return plan;
}

/// Cell_H text. min/max tables take a provider so the predict path can emit
/// same-width placeholders.
template <typename MinMaxFn>
std::string cell_h_text(const mesh::BoxArray& ba, int ncomp,
                        const LevelPlan& plan, MinMaxFn&& minmax) {
  std::ostringstream os;
  os << "1\n";  // version
  os << "1\n";  // how (one fab per grid)
  os << ncomp << '\n';
  os << "0\n";  // nghost on disk
  os << '(' << ba.size() << " 0\n";
  for (std::size_t i = 0; i < ba.size(); ++i) os << ba[i] << '\n';
  os << ")\n";
  os << ba.size() << '\n';
  for (std::size_t i = 0; i < ba.size(); ++i) {
    os << "FabOnDisk: " << plan.fabs[i].file << ' ' << plan.fabs[i].offset
       << '\n';
  }
  os << '\n' << ba.size() << ',' << ncomp << '\n';
  for (std::size_t i = 0; i < ba.size(); ++i) {
    for (int n = 0; n < ncomp; ++n) os << fixed_real(minmax(i, n, false)) << ',';
    os << '\n';
  }
  os << '\n' << ba.size() << ',' << ncomp << '\n';
  for (std::size_t i = 0; i < ba.size(); ++i) {
    for (int n = 0; n < ncomp; ++n) os << fixed_real(minmax(i, n, true)) << ',';
    os << '\n';
  }
  return os.str();
}

std::string header_text(const PlotfileSpec& spec,
                        const std::vector<LevelLayout>& levels) {
  AMRIO_EXPECTS(!levels.empty());
  std::ostringstream os;
  os << "HyperCLaw-V1.1\n";
  os << spec.var_names.size() << '\n';
  for (const auto& v : spec.var_names) os << v << '\n';
  os << mesh::kSpaceDim << '\n';
  os << fixed_real(spec.time) << '\n';
  const int finest = static_cast<int>(levels.size()) - 1;
  os << finest << '\n';
  const auto& g0 = levels.front().geom;
  os << fixed_real(g0.prob_lo()[0]) << ' ' << fixed_real(g0.prob_lo()[1]) << '\n';
  os << fixed_real(g0.prob_hi()[0]) << ' ' << fixed_real(g0.prob_hi()[1]) << '\n';
  for (int l = 0; l < finest; ++l) os << spec.ref_ratio << ' ';
  os << '\n';
  for (const auto& lev : levels) os << lev.geom.domain() << ' ';
  os << '\n';
  for (std::size_t l = 0; l < levels.size(); ++l) os << spec.step << ' ';
  os << '\n';
  for (const auto& lev : levels) {
    os << fixed_real(lev.geom.cell_size(0)) << ' '
       << fixed_real(lev.geom.cell_size(1)) << '\n';
  }
  os << "0\n";  // coord_sys: cartesian (Listing 2 geometry.coord_sys = 0)
  os << "0\n";  // boundary width
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const auto& lev = levels[l];
    os << l << ' ' << lev.ba.size() << ' ' << fixed_real(spec.time) << '\n';
    os << spec.step << '\n';
    for (std::size_t i = 0; i < lev.ba.size(); ++i) {
      const auto& b = lev.ba[i];
      for (int d = 0; d < mesh::kSpaceDim; ++d) {
        const double lo = lev.geom.cell_lo({b.lo(0), b.lo(1)})[static_cast<std::size_t>(d)];
        const auto hi_cell = mesh::IntVect(b.hi(0) + 1, b.hi(1) + 1);
        const double hi = lev.geom.cell_lo(hi_cell)[static_cast<std::size_t>(d)];
        os << fixed_real(lo) << ' ' << fixed_real(hi) << '\n';
      }
    }
    os << "Level_" << l << "/Cell\n";
  }
  return os.str();
}

void trace_meta(iostats::TraceRecorder* trace, std::int64_t step, int level,
                const std::string& path, std::uint64_t bytes) {
  if (trace != nullptr) trace->record_write(step, level, -1, path, bytes);
}

/// Size-prediction implementation: no backend is touched, min/max
/// placeholders stand in for field data, byte counts come from the plan.
WriteStats predict_impl(const PlotfileSpec& spec,
                        const std::vector<LevelLayout>& layouts, int ncomp,
                        iostats::TraceRecorder* trace, bool checkpoint) {
  AMRIO_EXPECTS(!layouts.empty());
  AMRIO_EXPECTS(ncomp >= 1);
  AMRIO_EXPECTS_MSG(spec.aggregators >= 0,
                    "plotfile: spec.aggregators must be >= 0");

  WriteStats stats;
  stats.rank_level_bytes.assign(layouts.size(), {});

  // Data-free codec model: plan() from sizes alone. Matches the write path
  // exactly for identity/lossless (pure size functions) and for ebl with
  // pinned smoothness; auto-smoothness ebl measures real fabs on write and
  // diverges here by design (there is no data to measure).
  const auto cdc = codec::make_codec(spec.codec);
  const bool encoded = spec.codec.enabled();

  // ---- per-level data files + Cell_H
  for (std::size_t l = 0; l < layouts.size(); ++l) {
    const auto& layout = layouts[l];
    const int nranks = layout.dm.nranks();
    stats.rank_level_bytes[l].assign(static_cast<std::size_t>(nranks), 0);
    const LevelPlan plan = plan_level(layout.ba, layout.dm, ncomp,
                                      spec.aggregators);
    const std::string level_dir = spec.dir + "/Level_" + std::to_string(l);

    for (const auto& [rank, boxes] : plan.rank_boxes) {
      (void)boxes;
      const std::uint64_t written = plan.rank_bytes.at(rank);
      stats.rank_level_bytes[l][static_cast<std::size_t>(rank)] = written;
      stats.data_bytes += written;
      if (encoded && written > 0)
        stats.codec.add(static_cast<int>(spec.step), static_cast<int>(l),
                        cdc->plan(written));
    }
    if (spec.aggregators > 0) {
      const auto topo = staging::AggTopology::make(
          nranks, level_groups(spec.aggregators, nranks));
      // Per-group codec sums over member chunks (the write-path aggregator
      // records the same sums from the shipped containers).
      std::map<int, codec::CompressResult> group_enc;
      if (encoded) {
        for (const auto& [r, bytes] : plan.rank_bytes) {
          const codec::CompressResult e = cdc->plan(bytes);
          auto& acc = group_enc[topo.group_of(r)];
          acc.raw_bytes += e.raw_bytes;
          acc.out_bytes += e.out_bytes;
          acc.cpu_seconds += e.cpu_seconds;
        }
      }
      for (const auto& [g, bytes] : plan.group_bytes) {
        const std::string path =
            level_dir + "/Cell_D_" +
            util::zero_pad(static_cast<std::uint64_t>(g), 5);
        ++stats.nfiles;
        if (trace != nullptr)
          trace->record_encoded_write(spec.step, static_cast<int>(l),
                                      topo.aggregator_of_group(g), path, bytes,
                                      group_enc[g].out_bytes,
                                      group_enc[g].cpu_seconds, /*tier=*/0, g);
      }
    } else {
      for (const auto& [rank, boxes] : plan.rank_boxes) {
        const std::string path = level_dir + "/" + plan.fabs[boxes.front()].file;
        ++stats.nfiles;
        if (trace != nullptr) {
          const std::uint64_t written = plan.rank_bytes.at(rank);
          const codec::CompressResult e =
              encoded ? cdc->plan(written) : codec::CompressResult{};
          trace->record_encoded_write(spec.step, static_cast<int>(l), rank,
                                      path, written, e.out_bytes,
                                      e.cpu_seconds, /*tier=*/0, -1);
        }
      }
    }

    const std::string cell_h = cell_h_text(
        layout.ba, ncomp, plan, [](std::size_t, int, bool) { return 0.0; });
    const std::string cell_h_path = level_dir + "/Cell_H";
    stats.metadata_bytes += cell_h.size();
    ++stats.nfiles;
    trace_meta(trace, spec.step, static_cast<int>(l), cell_h_path, cell_h.size());
  }

  // ---- top-level Header and job_info
  std::string header = header_text(spec, layouts);
  if (checkpoint) header = "CheckPointVersion_1.0\n" + header;
  stats.metadata_bytes += header.size();
  ++stats.nfiles;
  trace_meta(trace, spec.step, -1, spec.dir + "/Header", header.size());

  stats.metadata_bytes += spec.job_info.size();
  ++stats.nfiles;
  trace_meta(trace, spec.step, -1, spec.dir + "/job_info",
             spec.job_info.size());

  stats.total_bytes = stats.metadata_bytes + stats.data_bytes;
  return stats;
}

std::vector<LevelLayout> layouts_of(const std::vector<LevelPlotData>& levels) {
  std::vector<LevelLayout> out;
  out.reserve(levels.size());
  for (const auto& lev : levels) {
    AMRIO_EXPECTS(lev.data != nullptr);
    out.push_back(LevelLayout{lev.geom, lev.data->box_array(),
                              lev.data->distribution()});
  }
  return out;
}

/// The single SPMD write body shared by every execution mode: each rank
/// writes its own Cell_D files (one per level where it owns grids, fully
/// concurrent under an SPMD engine), per-rank byte counts are gathered to
/// rank 0, and rank 0 writes all metadata. Rank 0 returns full statistics;
/// other ranks return only their own contributions.
WriteStats write_plotfile_rank(exec::RankCtx& ctx, pfs::StorageBackend& backend,
                               const PlotfileSpec& spec,
                               const std::vector<LevelPlotData>& levels,
                               const std::vector<LevelLayout>& layouts,
                               int ncomp, iostats::TraceRecorder* trace,
                               bool checkpoint) {
  const int rank = ctx.rank();
  AMRIO_EXPECTS_MSG(spec.aggregators >= 0,
                    "plotfile: spec.aggregators must be >= 0");
  for (const auto& lay : layouts)
    AMRIO_EXPECTS_MSG(lay.dm.nranks() <= ctx.nranks(),
                      "write_plotfile: DM ranks " << lay.dm.nranks()
                                                  << " > engine ranks "
                                                  << ctx.nranks());

  WriteStats stats;
  stats.rank_level_bytes.assign(layouts.size(), {});

  // Only the metadata writer needs the per-level plans; compute each once.
  std::vector<LevelPlan> plans;
  if (rank == 0) {
    plans.reserve(layouts.size());
    for (const auto& layout : layouts)
      plans.push_back(plan_level(layout.ba, layout.dm, ncomp,
                                 spec.aggregators));
  }
  constexpr int kShipTag = 74;

  // Per-Cell_D codec hook: each rank's chunk is modeled (and, under
  // aggregation, physically containered) before it leaves the node. With
  // auto smoothness the ebl model reads the rank's real FAB values.
  const auto cdc = codec::make_codec(spec.codec);
  const bool encoded = spec.codec.enabled();
  const auto plan_chunk = [&](std::uint64_t raw_bytes,
                              const std::vector<std::size_t>& boxes,
                              const mesh::MultiFab& mf) {
    if (spec.codec.smoothness < 0.0) {
      codec::SmoothnessEstimator est;
      for (std::size_t bi : boxes) est.add(mf.fab(bi).data());
      return cdc->plan_with(raw_bytes, est.value());
    }
    return cdc->plan(raw_bytes);
  };

  // Phase 1: Cell_D data. Classic MIF: every rank writes its own file,
  // concurrently. Aggregated MIF: members serialize their fabs into memory
  // and ship them to their group's aggregator, which writes the one
  // Cell_D_<group> file — only aggregators open files.
  for (std::size_t l = 0; l < layouts.size(); ++l) {
    const auto& layout = layouts[l];
    const int level_ranks = layout.dm.nranks();
    stats.rank_level_bytes[l].assign(static_cast<std::size_t>(level_ranks), 0);
    const auto my_boxes = rank < level_ranks
                              ? layout.dm.boxes_of(rank)
                              : std::vector<std::size_t>{};
    std::uint64_t written = 0;
    std::uint64_t my_files = 0;
    codec::CompressResult enc{};
    if (spec.aggregators > 0) {
      if (rank < level_ranks) {
        const auto topo = staging::AggTopology::make(
            level_ranks, level_groups(spec.aggregators, level_ranks));
        const int group = topo.group_of(rank);
        const int agg = topo.aggregator_of_group(group);
        std::vector<std::byte> payload;
        const auto& mf = *levels[l].data;
        for (std::size_t bi : my_boxes)
          written += write_fab(payload, mf.fab(bi), mf.valid_box(bi));
        // Encoded chunks cross the link; the aggregator decodes them, so the
        // subfile stays the raw rank-order concatenation either way.
        if (encoded) enc = plan_chunk(written, my_boxes, mf);
        const auto payloads = exec::gatherv_group(
            ctx, encoded ? cdc->encode_as(payload, enc) : std::move(payload),
            topo.members_of(group), agg, kShipTag);
        if (rank == agg) {
          std::uint64_t group_total = 0;
          std::uint64_t group_encoded = 0;
          double group_cpu = 0.0;
          for (const auto& pl : payloads) {
            if (encoded) {
              const codec::CompressResult member = cdc->peek(pl);
              group_total += member.raw_bytes;
              group_encoded += member.out_bytes;
              group_cpu += member.cpu_seconds;
            } else {
              group_total += pl.size();
            }
          }
          if (group_total > 0) {
            const std::string path =
                spec.dir + "/Level_" + std::to_string(l) + "/Cell_D_" +
                util::zero_pad(static_cast<std::uint64_t>(group), 5);
            pfs::OutFile out(backend, path);
            for (const auto& pl : payloads) {
              if (encoded) out.write(cdc->decode(pl));
              else out.write(pl);
            }
            out.close();  // surface flush errors
            ++my_files;
            if (trace != nullptr)
              trace->record_encoded_write(spec.step, static_cast<int>(l), rank,
                                          path, group_total, group_encoded,
                                          group_cpu, /*tier=*/0, group);
          }
        }
      }
    } else if (!my_boxes.empty()) {
      const std::string path =
          spec.dir + "/Level_" + std::to_string(l) + "/Cell_D_" +
          util::zero_pad(static_cast<std::uint64_t>(rank), 5);
      pfs::OutFile out(backend, path);
      const auto& mf = *levels[l].data;
      for (std::size_t bi : my_boxes)
        written += write_fab(out, mf.fab(bi), mf.valid_box(bi));
      out.close();  // surface flush errors (destructor closes quietly)
      ++my_files;
      if (encoded) enc = plan_chunk(written, my_boxes, mf);
      if (trace != nullptr)
        trace->record_encoded_write(spec.step, static_cast<int>(l), rank, path,
                                    written, enc.out_bytes, enc.cpu_seconds,
                                    /*tier=*/0, -1);
    }
    // Gather per-rank data bytes — the collective AMReX performs so the
    // metadata writer knows every FabOnDisk offset is consistent.
    const auto all_bytes = ctx.gather(written, 0);
    // Codec dimensions ride two extra gathers (uniformly gated on the spec,
    // so every rank joins the same collective sequence).
    const std::vector<std::uint64_t> all_enc =
        encoded ? ctx.gather(enc.out_bytes, 0) : std::vector<std::uint64_t>{};
    const std::vector<std::uint64_t> all_cpu_ns =
        encoded ? ctx.gather(static_cast<std::uint64_t>(
                                 std::llround(enc.cpu_seconds * 1e9)),
                             0)
                : std::vector<std::uint64_t>{};
    if (rank == 0) {
      for (int r = 0; r < level_ranks; ++r) {
        stats.rank_level_bytes[l][static_cast<std::size_t>(r)] =
            all_bytes[static_cast<std::size_t>(r)];
        stats.data_bytes += all_bytes[static_cast<std::size_t>(r)];
        if (encoded && all_bytes[static_cast<std::size_t>(r)] > 0) {
          stats.codec.add(
              static_cast<int>(spec.step), static_cast<int>(l),
              codec::CompressResult{
                  all_bytes[static_cast<std::size_t>(r)],
                  all_enc[static_cast<std::size_t>(r)],
                  static_cast<double>(all_cpu_ns[static_cast<std::size_t>(r)]) *
                      1e-9});
        }
      }
      // cross-check the gathered totals against the deterministic plan
      const LevelPlan& plan = plans[l];
      for (const auto& [r, bytes] : plan.rank_bytes) {
        AMRIO_ENSURES(stats.rank_level_bytes[l][static_cast<std::size_t>(r)] ==
                      bytes);
      }
      stats.nfiles += spec.aggregators > 0 ? plan.group_bytes.size()
                                           : plan.rank_boxes.size();
    } else if (rank < level_ranks) {
      stats.rank_level_bytes[l][static_cast<std::size_t>(rank)] = written;
      stats.data_bytes += written;
      stats.nfiles += my_files;
    }
  }
  ctx.barrier();

  // Phase 2: rank 0 writes all metadata (Cell_H per level, Header, job_info).
  if (rank == 0) {
    for (std::size_t l = 0; l < layouts.size(); ++l) {
      const auto& layout = layouts[l];
      const LevelPlan& plan = plans[l];
      const auto& mf = *levels[l].data;
      const std::string cell_h =
          cell_h_text(layout.ba, ncomp, plan,
                      [&mf](std::size_t i, int n, bool want_max) {
                        return want_max ? mf.fab(i).max(mf.valid_box(i), n)
                                        : mf.fab(i).min(mf.valid_box(i), n);
                      });
      const std::string path =
          spec.dir + "/Level_" + std::to_string(l) + "/Cell_H";
      pfs::OutFile out(backend, path);
      out.write(cell_h);
      out.close();
      stats.metadata_bytes += cell_h.size();
      ++stats.nfiles;
      trace_meta(trace, spec.step, static_cast<int>(l), path, cell_h.size());
    }
    std::string header = header_text(spec, layouts);
    if (checkpoint) header = "CheckPointVersion_1.0\n" + header;
    {
      pfs::OutFile out(backend, spec.dir + "/Header");
      out.write(header);
      out.close();
    }
    stats.metadata_bytes += header.size();
    ++stats.nfiles;
    trace_meta(trace, spec.step, -1, spec.dir + "/Header", header.size());
    {
      pfs::OutFile out(backend, spec.dir + "/job_info");
      out.write(spec.job_info);
      out.close();
    }
    stats.metadata_bytes += spec.job_info.size();
    ++stats.nfiles;
    trace_meta(trace, spec.step, -1, spec.dir + "/job_info",
               spec.job_info.size());
  }
  ctx.barrier();
  stats.total_bytes = stats.metadata_bytes + stats.data_bytes;
  return stats;
}

int checked_ncomp(const PlotfileSpec& spec,
                  const std::vector<LevelPlotData>& levels, const char* what) {
  AMRIO_EXPECTS(!levels.empty());
  AMRIO_EXPECTS(levels.front().data != nullptr);
  const int ncomp = levels.front().data->ncomp();
  AMRIO_EXPECTS_MSG(static_cast<std::size_t>(ncomp) == spec.var_names.size(),
                    what << " var_names must match data components");
  return ncomp;
}

/// Engine ranks needed to host every level's distribution.
int engine_ranks_for(const std::vector<LevelLayout>& layouts) {
  int n = 1;
  for (const auto& lay : layouts) n = std::max(n, lay.dm.nranks());
  return n;
}

WriteStats write_on_engine(exec::Engine& engine, pfs::StorageBackend& backend,
                           const PlotfileSpec& spec,
                           const std::vector<LevelPlotData>& levels,
                           const std::vector<LevelLayout>& layouts,
                           iostats::TraceRecorder* trace, bool checkpoint) {
  const int ncomp = checked_ncomp(spec, levels,
                                  checkpoint ? "checkpoint" : "plotfile");
  WriteStats result;
  engine.run([&](exec::RankCtx& ctx) {
    WriteStats local = write_plotfile_rank(ctx, backend, spec, levels, layouts,
                                           ncomp, trace, checkpoint);
    if (ctx.rank() == 0) result = std::move(local);
  });
  return result;
}

}  // namespace

WriteStats write_plotfile(exec::Engine& engine, pfs::StorageBackend& backend,
                          const PlotfileSpec& spec,
                          const std::vector<LevelPlotData>& levels,
                          iostats::TraceRecorder* trace) {
  AMRIO_EXPECTS(!levels.empty());
  return write_on_engine(engine, backend, spec, levels, layouts_of(levels),
                         trace, /*checkpoint=*/false);
}

WriteStats write_plotfile(pfs::StorageBackend& backend, const PlotfileSpec& spec,
                          const std::vector<LevelPlotData>& levels,
                          iostats::TraceRecorder* trace) {
  AMRIO_EXPECTS(!levels.empty());
  const auto layouts = layouts_of(levels);
  exec::SerialEngine engine(engine_ranks_for(layouts));
  return write_on_engine(engine, backend, spec, levels, layouts, trace,
                         /*checkpoint=*/false);
}

WriteStats predict_plotfile(const PlotfileSpec& spec,
                            const std::vector<LevelLayout>& levels, int ncomp,
                            iostats::TraceRecorder* trace) {
  return predict_impl(spec, levels, ncomp, trace, /*checkpoint=*/false);
}

WriteStats write_checkpoint(pfs::StorageBackend& backend,
                            const PlotfileSpec& spec,
                            const std::vector<LevelPlotData>& levels,
                            iostats::TraceRecorder* trace) {
  AMRIO_EXPECTS(!levels.empty());
  const auto layouts = layouts_of(levels);
  exec::SerialEngine engine(engine_ranks_for(layouts));
  return write_on_engine(engine, backend, spec, levels, layouts, trace,
                         /*checkpoint=*/true);
}

WriteStats write_plotfile_spmd(simmpi::Comm& comm, pfs::StorageBackend& backend,
                               const PlotfileSpec& spec,
                               const std::vector<LevelPlotData>& levels,
                               iostats::TraceRecorder* trace) {
  const int ncomp = checked_ncomp(spec, levels, "plotfile");
  const auto layouts = layouts_of(levels);
  for (const auto& lay : layouts)
    AMRIO_EXPECTS_MSG(lay.dm.nranks() == comm.size(),
                      "write_plotfile_spmd: DM ranks " << lay.dm.nranks()
                                                       << " != comm size "
                                                       << comm.size());
  exec::CommCtx ctx(comm);
  return write_plotfile_rank(ctx, backend, spec, levels, layouts, ncomp, trace,
                             /*checkpoint=*/false);
}

}  // namespace amrio::plotfile

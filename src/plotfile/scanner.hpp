#pragma once
/// \file scanner.hpp
/// Walks a storage backend and measures every plotfile tree under a prefix,
/// producing the per-(step, level, task) byte table the paper builds from its
/// Summit runs ("quantify the cumulative output sizes at each requested time
/// interval, refinement level, and task").

#include <cstdint>
#include <string>
#include <vector>

#include "iostats/aggregate.hpp"
#include "pfs/backend.hpp"

namespace amrio::plotfile {

struct ScanResult {
  iostats::SizeTable table;
  std::vector<std::string> plotfile_dirs;  ///< sorted by step
  std::uint64_t total_bytes = 0;
  std::uint64_t nfiles = 0;
};

/// Scan all plotfile directories named `<plot_prefix><digits>` in `backend`.
/// File classification:
///   <dir>/Header, <dir>/job_info          -> (step, level=-1, rank=-1)
///   <dir>/Level_k/Cell_H                  -> (step, k, rank=-1)
///   <dir>/Level_k/Cell_D_r                -> (step, k, r)
/// Unrecognized files under a plotfile dir are counted as top-level metadata.
ScanResult scan_plotfiles(const pfs::StorageBackend& backend,
                          const std::string& plot_prefix);

}  // namespace amrio::plotfile

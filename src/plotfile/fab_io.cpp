#include "plotfile/fab_io.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "util/assert.hpp"

namespace amrio::plotfile {

namespace {
// AMReX native real descriptor for IEEE binary64, little endian.
constexpr const char* kRealDescriptor =
    "((8, (64 11 52 0 1 12 0 1023)),(8, (8 7 6 5 4 3 2 1)))";
}

std::string fab_header(const mesh::Box& box, int ncomp) {
  AMRIO_EXPECTS(box.ok());
  AMRIO_EXPECTS(ncomp >= 1);
  char buf[256];
  std::snprintf(buf, sizeof(buf), "FAB %s((%d,%d) (%d,%d) (0,0)) %d\n",
                kRealDescriptor, box.lo(0), box.lo(1), box.hi(0), box.hi(1),
                ncomp);
  return buf;
}

std::uint64_t fab_disk_size(const mesh::Box& box, int ncomp) {
  return fab_header(box, ncomp).size() +
         static_cast<std::uint64_t>(box.num_pts()) * ncomp * sizeof(double);
}

namespace {

/// One serialization body for every write_fab sink, so the backend-file and
/// byte-buffer overloads cannot drift apart (and both stay in lockstep with
/// fab_disk_size). `append` takes (pointer, byte count).
template <typename AppendFn>
std::uint64_t write_fab_impl(AppendFn&& append, const mesh::Fab& fab,
                             const mesh::Box& valid) {
  AMRIO_EXPECTS_MSG(fab.box().contains(valid),
                    "write_fab: valid box not contained in fab");
  const std::string header = fab_header(valid, fab.ncomp());
  append(header.data(), header.size());
  std::uint64_t bytes = header.size();

  if (fab.box() == valid) {
    // fast path: contiguous payload
    append(fab.data().data(), fab.data().size() * sizeof(double));
    return bytes + fab.data().size() * sizeof(double);
  }
  // gather valid region row by row, component-major
  std::vector<double> row(static_cast<std::size_t>(valid.length(0)));
  for (int n = 0; n < fab.ncomp(); ++n) {
    for (int j = valid.lo(1); j <= valid.hi(1); ++j) {
      for (int i = valid.lo(0); i <= valid.hi(0); ++i)
        row[static_cast<std::size_t>(i - valid.lo(0))] = fab({i, j}, n);
      append(row.data(), row.size() * sizeof(double));
      bytes += row.size() * sizeof(double);
    }
  }
  return bytes;
}

}  // namespace

std::uint64_t write_fab(pfs::OutFile& out, const mesh::Fab& fab,
                        const mesh::Box& valid) {
  return write_fab_impl(
      [&out](const void* p, std::size_t n) {
        out.write(std::span<const std::byte>(
            static_cast<const std::byte*>(p), n));
      },
      fab, valid);
}

std::uint64_t write_fab(std::vector<std::byte>& out, const mesh::Fab& fab,
                        const mesh::Box& valid) {
  return write_fab_impl(
      [&out](const void* p, std::size_t n) {
        const auto* b = static_cast<const std::byte*>(p);
        out.insert(out.end(), b, b + n);
      },
      fab, valid);
}

FabHeaderInfo parse_fab_header(std::span<const std::byte> bytes,
                               std::size_t& offset) {
  // find the newline
  std::size_t end = offset;
  while (end < bytes.size() && static_cast<char>(bytes[end]) != '\n') ++end;
  if (end >= bytes.size())
    throw std::runtime_error("FAB header: no newline found");
  std::string line(reinterpret_cast<const char*>(bytes.data()) + offset,
                   end - offset);
  // the box spec follows the real descriptor: ...))((lox,loy) (hix,hiy) (0,0)) n
  const auto pos = line.rfind(")((");
  if (pos == std::string::npos || line.substr(0, 4) != "FAB ")
    throw std::runtime_error("FAB header: malformed: " + line);
  FabHeaderInfo info;
  int lox = 0;
  int loy = 0;
  int hix = 0;
  int hiy = 0;
  int ncomp = 0;
  if (std::sscanf(line.c_str() + pos, ")((%d,%d) (%d,%d) (0,0)) %d", &lox, &loy,
                  &hix, &hiy, &ncomp) != 5)
    throw std::runtime_error("FAB header: cannot parse box: " + line);
  info.box = mesh::Box(lox, loy, hix, hiy);
  info.ncomp = ncomp;
  if (!info.box.ok() || ncomp < 1)
    throw std::runtime_error("FAB header: invalid box/ncomp: " + line);
  offset = end + 1;
  return info;
}

mesh::Fab read_fab(std::span<const std::byte> bytes, std::size_t& offset) {
  const FabHeaderInfo info = parse_fab_header(bytes, offset);
  mesh::Fab fab(info.box, info.ncomp);
  const std::size_t payload = fab.data().size() * sizeof(double);
  if (offset + payload > bytes.size())
    throw std::runtime_error("FAB payload: truncated file");
  std::memcpy(fab.data().data(), bytes.data() + offset, payload);
  offset += payload;
  return fab;
}

}  // namespace amrio::plotfile

#include "plotfile/reader.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>

#include "plotfile/fab_io.hpp"
#include "util/format.hpp"

namespace amrio::plotfile {

namespace {

std::string read_text(const pfs::StorageBackend& backend,
                      const std::string& path) {
  const auto bytes = backend.read(path);
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

std::string next_line(std::istringstream& in, const std::string& what) {
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error("plotfile reader: unexpected EOF reading " + what);
  return line;
}

}  // namespace

mesh::Box parse_box(const std::string& text) {
  int lox = 0;
  int loy = 0;
  int hix = 0;
  int hiy = 0;
  if (std::sscanf(text.c_str(), "((%d,%d)-(%d,%d))", &lox, &loy, &hix, &hiy) != 4)
    throw std::runtime_error("parse_box: malformed box: " + text);
  return mesh::Box(lox, loy, hix, hiy);
}

Plotfile read_plotfile(const pfs::StorageBackend& backend,
                       const std::string& dir, bool load_data) {
  Plotfile pf;
  std::istringstream header(read_text(backend, dir + "/Header"));

  std::string magic = next_line(header, "magic");
  if (magic == "CheckPointVersion_1.0") magic = next_line(header, "magic");
  if (magic != "HyperCLaw-V1.1")
    throw std::runtime_error("plotfile reader: bad magic: " + magic);

  const int nvars = std::stoi(next_line(header, "nvars"));
  for (int i = 0; i < nvars; ++i)
    pf.var_names.push_back(next_line(header, "var name"));
  const int dim = std::stoi(next_line(header, "dim"));
  if (dim != mesh::kSpaceDim)
    throw std::runtime_error("plotfile reader: unsupported dim");
  pf.time = std::stod(next_line(header, "time"));
  pf.finest_level = std::stoi(next_line(header, "finest_level"));

  {
    const auto lo = util::split_ws(next_line(header, "prob_lo"));
    const auto hi = util::split_ws(next_line(header, "prob_hi"));
    if (lo.size() < 2 || hi.size() < 2)
      throw std::runtime_error("plotfile reader: bad prob_lo/hi");
    pf.prob_lo = {std::stod(lo[0]), std::stod(lo[1])};
    pf.prob_hi = {std::stod(hi[0]), std::stod(hi[1])};
  }
  {
    const auto toks = util::split_ws(next_line(header, "ref_ratio"));
    for (const auto& t : toks) pf.ref_ratio.push_back(std::stoi(t));
  }
  std::vector<mesh::Box> domains;
  {
    // domains are written space-separated: ((0,0)-(31,31)) ((0,0)-(63,63))
    const auto line = next_line(header, "domains");
    std::size_t pos = 0;
    while ((pos = line.find("((", pos)) != std::string::npos) {
      const auto end = line.find("))", pos);
      if (end == std::string::npos) break;
      domains.push_back(parse_box(line.substr(pos, end - pos + 2)));
      pos = end + 2;
    }
  }
  if (static_cast<int>(domains.size()) != pf.finest_level + 1)
    throw std::runtime_error("plotfile reader: domain count mismatch");
  next_line(header, "level_steps");
  for (int l = 0; l <= pf.finest_level; ++l) next_line(header, "cell sizes");
  next_line(header, "coord_sys");
  next_line(header, "bwidth");

  for (int l = 0; l <= pf.finest_level; ++l) {
    PlotfileLevelInfo lev;
    lev.geom = mesh::Geometry(domains[static_cast<std::size_t>(l)], pf.prob_lo,
                              pf.prob_hi);
    const auto head = util::split_ws(next_line(header, "level head"));
    if (head.size() < 3) throw std::runtime_error("plotfile reader: level head");
    const int ngrids = std::stoi(head[1]);
    next_line(header, "level step");
    for (int g = 0; g < ngrids; ++g)
      for (int d = 0; d < mesh::kSpaceDim; ++d) next_line(header, "grid extent");
    next_line(header, "level path");

    // ---- Cell_H
    const std::string level_dir = dir + "/Level_" + std::to_string(l);
    std::istringstream cell_h(read_text(backend, level_dir + "/Cell_H"));
    next_line(cell_h, "version");
    next_line(cell_h, "how");
    const int ncomp = std::stoi(next_line(cell_h, "ncomp"));
    if (ncomp != nvars)
      throw std::runtime_error("plotfile reader: Cell_H ncomp mismatch");
    next_line(cell_h, "nghost");
    const auto ba_head = next_line(cell_h, "boxarray head");  // "(N 0"
    const int nboxes = std::stoi(ba_head.substr(1));
    if (nboxes != ngrids)
      throw std::runtime_error("plotfile reader: grid count mismatch");
    std::vector<mesh::Box> boxes;
    for (int g = 0; g < nboxes; ++g)
      boxes.push_back(parse_box(next_line(cell_h, "box")));
    lev.ba = mesh::BoxArray(std::move(boxes));
    next_line(cell_h, "boxarray close");
    const int nfabs = std::stoi(next_line(cell_h, "nfabs"));
    if (nfabs != nboxes)
      throw std::runtime_error("plotfile reader: fab count mismatch");
    for (int g = 0; g < nfabs; ++g) {
      const auto toks = util::split_ws(next_line(cell_h, "FabOnDisk"));
      if (toks.size() != 3 || toks[0] != "FabOnDisk:")
        throw std::runtime_error("plotfile reader: bad FabOnDisk line");
      lev.fab_files.push_back(toks[1]);
      lev.fab_offsets.push_back(std::stoull(toks[2]));
    }

    if (load_data) {
      std::map<std::string, std::vector<std::byte>> cache;
      for (int g = 0; g < nfabs; ++g) {
        const std::string path = level_dir + "/" + lev.fab_files[static_cast<std::size_t>(g)];
        auto it = cache.find(path);
        if (it == cache.end()) it = cache.emplace(path, backend.read(path)).first;
        std::size_t offset = lev.fab_offsets[static_cast<std::size_t>(g)];
        mesh::Fab fab = read_fab(it->second, offset);
        if (!(fab.box() == lev.ba[static_cast<std::size_t>(g)]))
          throw std::runtime_error("plotfile reader: fab box mismatch");
        lev.fabs.push_back(std::move(fab));
      }
    }
    pf.levels.push_back(std::move(lev));
  }
  return pf;
}

std::vector<pfs::IoRequest> RestartReadPlan::read_requests(double clock,
                                                           int tier) const {
  std::vector<pfs::IoRequest> reqs;
  std::map<std::string, std::size_t> index_of;  // path → position in reqs
  for (const auto& item : items) {
    const auto it = index_of.find(item.path);
    if (it == index_of.end()) {
      index_of.emplace(item.path, reqs.size());
      reqs.push_back(pfs::IoRequest{static_cast<int>(reqs.size()), clock,
                                    item.path, item.bytes, tier,
                                    pfs::kOpRead});
    } else {
      reqs[it->second].bytes += item.bytes;
    }
  }
  return reqs;
}

RestartReadPlan plan_restart_reads(const pfs::StorageBackend& backend,
                                   const std::string& dir) {
  const Plotfile pf = read_plotfile(backend, dir, /*load_data=*/false);
  RestartReadPlan plan;
  for (int l = 0; l <= pf.finest_level; ++l) {
    const auto& lev = pf.levels[static_cast<std::size_t>(l)];
    const std::string level_dir = dir + "/Level_" + std::to_string(l);
    // Per Cell_D file, the fab offsets partition [0, file size): sort the
    // level's items per file by offset, then each fab's extent runs to the
    // next offset (the last to the end of the file).
    const std::size_t first = plan.items.size();
    for (std::size_t g = 0; g < lev.fab_files.size(); ++g) {
      RestartReadItem item;
      item.level = l;
      item.grid = static_cast<int>(g);
      item.path = level_dir + "/" + lev.fab_files[g];
      item.offset = lev.fab_offsets[g];
      plan.items.push_back(std::move(item));
    }
    std::map<std::string, std::vector<std::size_t>> by_file;
    for (std::size_t i = first; i < plan.items.size(); ++i)
      by_file[plan.items[i].path].push_back(i);
    for (auto& [path, idxs] : by_file) {
      std::sort(idxs.begin(), idxs.end(), [&](std::size_t a, std::size_t b) {
        return plan.items[a].offset < plan.items[b].offset;
      });
      const std::uint64_t file_size = backend.size(path);
      for (std::size_t k = 0; k < idxs.size(); ++k) {
        const std::uint64_t offset = plan.items[idxs[k]].offset;
        // offsets are sorted, so an overlap shows up as a duplicate offset
        // (two fabs recorded at the same position) and truncation as a
        // file too short for its last fab
        if (k + 1 < idxs.size() && plan.items[idxs[k + 1]].offset == offset)
          throw std::runtime_error(
              "plan_restart_reads: overlapping fab extents in " + path);
        const std::uint64_t end =
            k + 1 < idxs.size() ? plan.items[idxs[k + 1]].offset : file_size;
        if (end < offset)
          throw std::runtime_error(
              "plan_restart_reads: " + path + " truncated below its fab "
              "offsets");
        plan.items[idxs[k]].bytes = end - offset;
        plan.total_bytes += plan.items[idxs[k]].bytes;
      }
      if (!idxs.empty() && plan.items[idxs.front()].offset != 0)
        throw std::runtime_error(
            "plan_restart_reads: leading gap before the first fab in " + path);
    }
  }
  return plan;
}

}  // namespace amrio::plotfile

#pragma once
/// \file reader.hpp
/// Reader for the plotfiles produced by writer.hpp — used by round-trip tests
/// and by downstream tooling that wants to inspect a written hierarchy the way
/// the authors' Jupyter/jexio post-processing did.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mesh/boxarray.hpp"
#include "mesh/fab.hpp"
#include "mesh/geometry.hpp"
#include "pfs/backend.hpp"

namespace amrio::plotfile {

struct PlotfileLevelInfo {
  mesh::Geometry geom;
  mesh::BoxArray ba;
  std::vector<std::string> fab_files;     ///< per grid: Cell_D basename
  std::vector<std::uint64_t> fab_offsets; ///< per grid: byte offset
  std::vector<mesh::Fab> fabs;            ///< loaded when load_data = true
};

struct Plotfile {
  std::vector<std::string> var_names;
  double time = 0.0;
  std::int64_t step = 0;
  int finest_level = 0;
  std::array<double, 2> prob_lo{0, 0};
  std::array<double, 2> prob_hi{1, 1};
  std::vector<int> ref_ratio;
  std::vector<PlotfileLevelInfo> levels;
};

/// Parse "((x,y)-(x,y))". Throws std::runtime_error on malformed text.
mesh::Box parse_box(const std::string& text);

/// Read a plotfile tree rooted at `dir` inside `backend`. With
/// `load_data=false` only metadata (Header + Cell_H) is parsed.
/// Throws std::runtime_error on missing/corrupt files.
Plotfile read_plotfile(const pfs::StorageBackend& backend,
                       const std::string& dir, bool load_data = true);

}  // namespace amrio::plotfile

#pragma once
/// \file reader.hpp
/// Reader for the plotfiles produced by writer.hpp — used by round-trip tests
/// and by downstream tooling that wants to inspect a written hierarchy the way
/// the authors' Jupyter/jexio post-processing did.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mesh/boxarray.hpp"
#include "mesh/fab.hpp"
#include "mesh/geometry.hpp"
#include "pfs/backend.hpp"
#include "pfs/simfs.hpp"

namespace amrio::plotfile {

struct PlotfileLevelInfo {
  mesh::Geometry geom;
  mesh::BoxArray ba;
  std::vector<std::string> fab_files;     ///< per grid: Cell_D basename
  std::vector<std::uint64_t> fab_offsets; ///< per grid: byte offset
  std::vector<mesh::Fab> fabs;            ///< loaded when load_data = true
};

struct Plotfile {
  std::vector<std::string> var_names;
  double time = 0.0;
  std::int64_t step = 0;
  int finest_level = 0;
  std::array<double, 2> prob_lo{0, 0};
  std::array<double, 2> prob_hi{1, 1};
  std::vector<int> ref_ratio;
  std::vector<PlotfileLevelInfo> levels;
};

/// Parse "((x,y)-(x,y))". Throws std::runtime_error on malformed text.
mesh::Box parse_box(const std::string& text);

/// Read a plotfile tree rooted at `dir` inside `backend`. With
/// `load_data=false` only metadata (Header + Cell_H) is parsed.
/// Throws std::runtime_error on missing/corrupt files.
Plotfile read_plotfile(const pfs::StorageBackend& backend,
                       const std::string& dir, bool load_data = true);

/// One fab's on-disk extent — the unit a checkpoint restart fetches.
struct RestartReadItem {
  int level = 0;
  int grid = 0;             ///< grid index within the level
  std::string path;         ///< full Cell_D path inside the backend
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;  ///< header + payload, up to the next fab
};

/// Restart read plan over a written plotfile: the per-(level, grid) byte
/// extents a restart fetches, derived from metadata alone (Header + Cell_H
/// FabOnDisk offsets + Cell_D sizes) — byte-exact without touching a single
/// payload byte, the read-side analogue of `predict_plotfile`. The items of
/// one Cell_D file partition it completely, so `total_bytes` equals the sum
/// of the Cell_D file sizes.
struct RestartReadPlan {
  std::vector<RestartReadItem> items;  ///< (level, grid) order
  std::uint64_t total_bytes = 0;
  /// Tier-tagged `kOpRead` requests at `clock`, one per distinct Cell_D file
  /// covering its full extent; clients are numbered in file first-appearance
  /// order (one reading rank per file, the MIF pattern in reverse).
  std::vector<pfs::IoRequest> read_requests(double clock, int tier) const;
};

/// Build the plan for the plotfile rooted at `dir`. Only Header/Cell_H are
/// read (the backend must store contents, like any plotfile read). Throws
/// std::runtime_error on missing/corrupt files.
RestartReadPlan plan_restart_reads(const pfs::StorageBackend& backend,
                                   const std::string& dir);

}  // namespace amrio::plotfile

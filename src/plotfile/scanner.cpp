#include "plotfile/scanner.hpp"

#include <algorithm>
#include <optional>
#include <set>

#include "util/format.hpp"

namespace amrio::plotfile {

namespace {

std::optional<std::int64_t> parse_step_suffix(const std::string& name,
                                              const std::string& prefix) {
  if (!util::starts_with(name, prefix)) return std::nullopt;
  const std::string digits = name.substr(prefix.size());
  if (digits.empty()) return std::nullopt;
  for (char c : digits)
    if (c < '0' || c > '9') return std::nullopt;
  return std::stoll(digits);
}

std::optional<int> parse_level_dir(const std::string& seg) {
  if (!util::starts_with(seg, "Level_")) return std::nullopt;
  const std::string digits = seg.substr(6);
  if (digits.empty()) return std::nullopt;
  for (char c : digits)
    if (c < '0' || c > '9') return std::nullopt;
  return std::stoi(digits);
}

std::optional<int> parse_task_file(const std::string& seg) {
  if (!util::starts_with(seg, "Cell_D_")) return std::nullopt;
  const std::string digits = seg.substr(7);
  if (digits.empty()) return std::nullopt;
  for (char c : digits)
    if (c < '0' || c > '9') return std::nullopt;
  return std::stoi(digits);
}

}  // namespace

ScanResult scan_plotfiles(const pfs::StorageBackend& backend,
                          const std::string& plot_prefix) {
  ScanResult result;
  std::set<std::pair<std::int64_t, std::string>> dirs;

  for (const auto& path : backend.list(plot_prefix)) {
    const auto segs = util::split(path, '/');
    if (segs.empty()) continue;
    const auto step = parse_step_suffix(segs[0], plot_prefix);
    if (!step) continue;

    const std::uint64_t bytes = backend.size(path);
    result.total_bytes += bytes;
    ++result.nfiles;
    dirs.insert({*step, segs[0]});

    int level = -1;
    int rank = -1;
    if (segs.size() >= 3) {
      if (const auto l = parse_level_dir(segs[1])) {
        level = *l;
        if (const auto r = parse_task_file(segs[2])) rank = *r;
      }
    }
    result.table[{*step, level, rank}] += bytes;
  }

  for (const auto& [step, dir] : dirs) result.plotfile_dirs.push_back(dir);
  return result;
}

}  // namespace amrio::plotfile

#pragma once
/// \file fab_io.hpp
/// Serialization of a single FAB in the AMReX native on-disk format: an ASCII
/// header line
///
///   FAB ((8, (64 11 52 0 1 12 0 1023)),(8, (8 7 6 5 4 3 2 1)))((lo_x,lo_y) (hi_x,hi_y) (0,0)) ncomp
///
/// followed by the raw little-endian doubles, component-major. The magic
/// tuples describe IEEE-754 binary64 exactly as AMReX's RealDescriptor does.

#include <cstdint>
#include <span>
#include <string>

#include "mesh/fab.hpp"
#include "pfs/backend.hpp"

namespace amrio::plotfile {

/// The FAB header line (without data) for a fab covering `box` with `ncomp`
/// components. Ends with '\n'.
std::string fab_header(const mesh::Box& box, int ncomp);

/// Exact serialized size of a fab: header + payload bytes.
std::uint64_t fab_disk_size(const mesh::Box& box, int ncomp);

/// Append one fab (valid region only) to an open backend file.
/// Returns bytes written.
std::uint64_t write_fab(pfs::OutFile& out, const mesh::Fab& fab,
                        const mesh::Box& valid);

/// Append one fab (valid region only) to a byte buffer — the serialization
/// the aggregated-MIF write path ships to its aggregator. Byte-identical to
/// the backend-file overload. Returns bytes appended.
std::uint64_t write_fab(std::vector<std::byte>& out, const mesh::Fab& fab,
                        const mesh::Box& valid);

/// Parse a FAB header line; returns {box, ncomp} and advances `offset` past
/// the newline. Throws std::runtime_error on malformed headers.
struct FabHeaderInfo {
  mesh::Box box;
  int ncomp = 0;
};
FabHeaderInfo parse_fab_header(std::span<const std::byte> bytes,
                               std::size_t& offset);

/// Read one fab starting at `offset` (header + payload); advances offset.
mesh::Fab read_fab(std::span<const std::byte> bytes, std::size_t& offset);

}  // namespace amrio::plotfile

#include "model/regression.hpp"

#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace amrio::model {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  AMRIO_EXPECTS(x.size() == y.size());
  AMRIO_EXPECTS_MSG(x.size() >= 2, "fit_linear needs at least two points");
  const double n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  AMRIO_EXPECTS_MSG(std::abs(denom) > 1e-300,
                    "fit_linear needs at least two distinct x values");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double mean_y = sy / n;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.intercept + fit.slope * x[i];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  fit.r2 = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  fit.rmse = std::sqrt(ss_res / n);
  return fit;
}

PowerFit fit_power(std::span<const double> x, std::span<const double> y) {
  AMRIO_EXPECTS(x.size() == y.size());
  std::vector<double> lx;
  std::vector<double> ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    AMRIO_EXPECTS_MSG(x[i] > 0 && y[i] > 0, "fit_power needs positive data");
    lx.push_back(std::log(x[i]));
    ly.push_back(std::log(y[i]));
  }
  const LinearFit lf = fit_linear(lx, ly);
  PowerFit pf;
  pf.a = std::exp(lf.intercept);
  pf.b = lf.slope;
  pf.r2 = lf.r2;
  return pf;
}

MultiFit fit_multilinear(std::span<const std::vector<double>> rows,
                         std::span<const double> y) {
  AMRIO_EXPECTS(rows.size() == y.size());
  AMRIO_EXPECTS_MSG(!rows.empty(), "fit_multilinear needs observations");
  const std::size_t nfeat = rows.front().size();
  for (const auto& row : rows)
    AMRIO_EXPECTS_MSG(row.size() == nfeat,
                      "fit_multilinear rows must share a length");
  const std::size_t dim = nfeat + 1;  // intercept column
  AMRIO_EXPECTS_MSG(rows.size() >= dim,
                    "fit_multilinear needs >= nfeatures + 1 observations");

  // Normal equations: (XᵀX)β = Xᵀy with X = [1 | rows].
  std::vector<double> xtx(dim * dim, 0.0);
  std::vector<double> xty(dim, 0.0);
  std::vector<double> xi(dim, 1.0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < nfeat; ++j) xi[j + 1] = rows[i][j];
    for (std::size_t r = 0; r < dim; ++r) {
      xty[r] += xi[r] * y[i];
      for (std::size_t c = 0; c < dim; ++c) xtx[r * dim + c] += xi[r] * xi[c];
    }
  }

  // Gaussian elimination with partial pivoting on the augmented system.
  std::vector<double> beta = xty;
  for (std::size_t col = 0; col < dim; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < dim; ++r)
      if (std::abs(xtx[r * dim + col]) > std::abs(xtx[pivot * dim + col]))
        pivot = r;
    AMRIO_EXPECTS_MSG(std::abs(xtx[pivot * dim + col]) > 1e-12,
                      "fit_multilinear design matrix is singular");
    if (pivot != col) {
      for (std::size_t c = 0; c < dim; ++c)
        std::swap(xtx[pivot * dim + c], xtx[col * dim + c]);
      std::swap(beta[pivot], beta[col]);
    }
    for (std::size_t r = col + 1; r < dim; ++r) {
      const double f = xtx[r * dim + col] / xtx[col * dim + col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < dim; ++c)
        xtx[r * dim + c] -= f * xtx[col * dim + c];
      beta[r] -= f * beta[col];
    }
  }
  for (std::size_t col = dim; col-- > 0;) {
    for (std::size_t c = col + 1; c < dim; ++c)
      beta[col] -= xtx[col * dim + c] * beta[c];
    beta[col] /= xtx[col * dim + col];
  }

  MultiFit fit;
  fit.beta = std::move(beta);
  double sy = 0.0;
  for (const double v : y) sy += v;
  const double mean_y = sy / static_cast<double>(y.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    double pred = fit.beta[0];
    for (std::size_t j = 0; j < nfeat; ++j) pred += fit.beta[j + 1] * rows[i][j];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  fit.r2 = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  fit.rmse = std::sqrt(ss_res / static_cast<double>(y.size()));
  return fit;
}

}  // namespace amrio::model

#include "model/regression.hpp"

#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace amrio::model {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  AMRIO_EXPECTS(x.size() == y.size());
  AMRIO_EXPECTS_MSG(x.size() >= 2, "fit_linear needs at least two points");
  const double n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  AMRIO_EXPECTS_MSG(std::abs(denom) > 1e-300,
                    "fit_linear needs at least two distinct x values");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double mean_y = sy / n;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.intercept + fit.slope * x[i];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  fit.r2 = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  fit.rmse = std::sqrt(ss_res / n);
  return fit;
}

PowerFit fit_power(std::span<const double> x, std::span<const double> y) {
  AMRIO_EXPECTS(x.size() == y.size());
  std::vector<double> lx;
  std::vector<double> ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    AMRIO_EXPECTS_MSG(x[i] > 0 && y[i] > 0, "fit_power needs positive data");
    lx.push_back(std::log(x[i]));
    ly.push_back(std::log(y[i]));
  }
  const LinearFit lf = fit_linear(lx, ly);
  PowerFit pf;
  pf.a = std::exp(lf.intercept);
  pf.b = lf.slope;
  pf.r2 = lf.r2;
  return pf;
}

}  // namespace amrio::model

#include "model/translate.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace amrio::model {

macsio::Params static_translation(const amr::AmrInputs& inputs) {
  macsio::Params p;
  p.interface = macsio::Interface::kMiftmpl;   // the paper's Summit runs
  p.file_mode = macsio::FileMode::kMif;
  p.mif_files = 0;  // MIF nproc: one file per task, AMReX's N-to-N default
  p.nprocs = inputs.nprocs;
  // Listing 1: --num_dumps amr.max_step / amr.plot_int, plus the step-0 dump
  // Castro writes before the first step.
  const std::int64_t dumps =
      (inputs.plot_int > 0) ? inputs.max_step / inputs.plot_int + 1 : 1;
  p.num_dumps = static_cast<int>(std::max<std::int64_t>(dumps, 1));
  p.avg_num_parts = 1.0;
  p.vars_per_part = 1;
  p.compute_time = 0.0;   // runtime-measured; filled by translate()
  p.meta_size = 0;
  p.dataset_growth = 1.0;
  return p;
}

TranslationResult translate(const amr::AmrInputs& inputs,
                            const RunMeasurements& measured,
                            double growth_lo, double growth_hi) {
  AMRIO_EXPECTS(!measured.per_step_bytes.empty());
  AMRIO_EXPECTS(measured.first_output_bytes > 0);

  TranslationResult result;
  macsio::Params base = static_translation(inputs);
  base.num_dumps = static_cast<int>(measured.per_step_bytes.size());
  base.compute_time =
      measured.mean_step_seconds * static_cast<double>(std::max<std::int64_t>(
                                       inputs.plot_int, 1));
  base.meta_size = static_cast<std::uint64_t>(
      std::llround(std::max(measured.metadata_bytes_per_task, 0.0)));

  // Eq. (3): fix the initial size from the first output event.
  result.part_size_fit =
      fit_part_size(base, measured.first_output_bytes, inputs.ncells0());
  base.part_size = result.part_size_fit.part_size;

  // Single-parameter growth calibration against the full series.
  result.calibration = calibrate_growth(base, measured.per_step_bytes,
                                        growth_lo, growth_hi);
  result.params = result.calibration.params;
  result.command_line = result.params.to_command_line();
  return result;
}

void GrowthGuess::add(double cfl, int max_level, double growth) {
  AMRIO_EXPECTS(growth > 0);
  points_.push_back(Point{cfl, static_cast<double>(max_level), growth});
}

double GrowthGuess::interpolate(double cfl, int max_level) const {
  AMRIO_EXPECTS_MSG(!points_.empty(), "GrowthGuess: empty table");
  // Normalize the two axes to comparable scales (cfl spans ~0.3, levels ~4).
  constexpr double kCflScale = 1.0 / 0.1;
  constexpr double kLevelScale = 1.0 / 1.0;
  double wsum = 0.0;
  double acc = 0.0;
  for (const auto& pt : points_) {
    const double dc = (pt.cfl - cfl) * kCflScale;
    const double dl = (pt.level - static_cast<double>(max_level)) * kLevelScale;
    const double d2 = dc * dc + dl * dl;
    if (d2 < 1e-12) return pt.growth;  // exact hit
    const double w = 1.0 / d2;
    wsum += w;
    acc += w * pt.growth;
  }
  return acc / wsum;
}

}  // namespace amrio::model

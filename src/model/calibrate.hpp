#pragma once
/// \file calibrate.hpp
/// Single-parameter calibration of MACSio's `dataset_growth` against a
/// measured per-step output series — the paper's §IV-B procedure ("keeping the
/// initial data size fixed would lead to a single parameter optimization
/// problem"). A golden-section search minimizes the RMS relative error; every
/// iterate's proxy series is kept so Fig. 9's convergence curves can be drawn.

#include <span>
#include <vector>

#include "macsio/params.hpp"

namespace amrio::model {

struct CalibrationIterate {
  double growth = 1.0;
  double objective = 0.0;           ///< RMS relative per-step error
  std::vector<double> per_dump;     ///< proxy bytes per dump at this growth
};

struct CalibrationResult {
  double best_growth = 1.0;
  double best_objective = 0.0;
  std::vector<CalibrationIterate> iterates;  ///< in evaluation order
  macsio::Params params;                     ///< base params with best growth
};

/// RMS relative error between a proxy per-dump series and the target.
double series_objective(std::span<const double> proxy,
                        std::span<const double> target);

/// Exact MACSio per-dump bytes for `params` (task docs + root metadata),
/// computed through the serialization-size functions — no I/O performed.
std::vector<double> macsio_per_dump_bytes(const macsio::Params& params);

/// Calibrate dataset_growth in [lo, hi] so the proxy's per-dump series tracks
/// `target_per_step` (whose length fixes num_dumps). Requires a positive
/// target series.
CalibrationResult calibrate_growth(macsio::Params base,
                                   std::span<const double> target_per_step,
                                   double lo = 1.0, double hi = 1.05,
                                   int max_iters = 16);

}  // namespace amrio::model

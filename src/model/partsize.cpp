#include "model/partsize.hpp"

#include <cmath>

#include "macsio/interfaces.hpp"
#include "util/assert.hpp"

namespace amrio::model {

std::uint64_t part_size_model(double f, std::int64_t ncells0, int nprocs) {
  AMRIO_EXPECTS(f > 0 && ncells0 > 0 && nprocs > 0);
  const double bytes = f * 8.0 * static_cast<double>(ncells0) /
                       static_cast<double>(nprocs);
  return static_cast<std::uint64_t>(std::llround(bytes));
}

std::uint64_t macsio_dump0_bytes(const macsio::Params& base,
                                 std::uint64_t part_size) {
  const auto iface = macsio::make_interface(base.interface);
  const macsio::PartSpec spec =
      macsio::make_part_spec(part_size, base.vars_per_part);
  std::uint64_t total = 0;
  for (int rank = 0; rank < base.nprocs; ++rank) {
    const int nparts = base.parts_of_rank(rank);
    if (nparts == 0) continue;
    total += iface->task_doc_bytes(spec, rank, 0, nparts, base.meta_size);
  }
  return total;
}

PartSizeFit fit_part_size(const macsio::Params& base, double target_dump0_bytes,
                          std::int64_t ncells0) {
  AMRIO_EXPECTS(target_dump0_bytes > 0);
  AMRIO_EXPECTS(ncells0 > 0);
  PartSizeFit fit;
  fit.target_bytes = target_dump0_bytes;

  // The dump size is monotone non-decreasing in part_size; bisect.
  std::uint64_t lo = 8;
  std::uint64_t hi = static_cast<std::uint64_t>(
      std::llround(2.0 * target_dump0_bytes / base.nprocs)) + 65536;
  while (static_cast<double>(macsio_dump0_bytes(base, hi)) < target_dump0_bytes &&
         hi < (1ull << 44)) {
    hi *= 2;
  }
  for (int iter = 0; iter < 64 && lo + 1 < hi; ++iter) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (static_cast<double>(macsio_dump0_bytes(base, mid)) < target_dump0_bytes)
      lo = mid;
    else
      hi = mid;
  }
  // pick the closer endpoint
  const double at_lo = static_cast<double>(macsio_dump0_bytes(base, lo));
  const double at_hi = static_cast<double>(macsio_dump0_bytes(base, hi));
  if (std::abs(at_lo - target_dump0_bytes) <= std::abs(at_hi - target_dump0_bytes)) {
    fit.part_size = lo;
    fit.achieved_bytes = at_lo;
  } else {
    fit.part_size = hi;
    fit.achieved_bytes = at_hi;
  }
  fit.rel_error =
      std::abs(fit.achieved_bytes - target_dump0_bytes) / target_dump0_bytes;
  // Invert Eq. (3) for the implied correction factor.
  fit.f = static_cast<double>(fit.part_size) * base.nprocs /
          (8.0 * static_cast<double>(ncells0));
  return fit;
}

}  // namespace amrio::model

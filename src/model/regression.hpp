#pragma once
/// \file regression.hpp
/// Ordinary least-squares linear regression — the paper's §I tool ("Linear
/// regression is then applied to formulate a simple analytical model") used to
/// classify near-linear vs super-linear cumulative output growth and to fit
/// the Eq. (3) correction factor.

#include <span>
#include <vector>

namespace amrio::model {

struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;    ///< coefficient of determination
  double rmse = 0.0;  ///< root mean squared residual
};

/// Fit y ≈ intercept + slope·x. Requires x.size() == y.size() >= 2 and at
/// least two distinct x values; throws ContractViolation otherwise.
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Fit y ≈ a·x^b via log–log least squares (all inputs must be positive).
struct PowerFit {
  double a = 0.0;
  double b = 0.0;
  double r2 = 0.0;
};
PowerFit fit_power(std::span<const double> x, std::span<const double> y);

/// Multi-feature OLS fit: y ≈ beta[0] + Σ beta[1+j]·row[j]. Backs the
/// campaign predict service, where Eq. (3)'s single-knob correction factor
/// generalizes to a small feature vector (log bytes, log ranks, ...).
struct MultiFit {
  std::vector<double> beta;  ///< intercept first, then one weight per feature
  double r2 = 0.0;
  double rmse = 0.0;
};

/// Fit y against `rows` (one feature vector per observation; all rows must
/// share a length). Solves the normal equations by Gaussian elimination with
/// partial pivoting. Requires rows.size() == y.size() >= nfeatures + 1 and a
/// non-singular design; throws ContractViolation otherwise.
MultiFit fit_multilinear(std::span<const std::vector<double>> rows,
                         std::span<const double> y);

}  // namespace amrio::model

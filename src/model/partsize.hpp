#pragma once
/// \file partsize.hpp
/// The paper's Eq. (3):
///
///     part_size = f · 8 · Nx · Ny / nprocs   [bytes],   f ≈ 23–25
///
/// where f is "a correction factor due to the difference in nature of the
/// MACSio json-based output and AMReX output file formats" and 8 accounts for
/// double precision. This module both evaluates the forward model and fits f
/// against a measured first-output size by inverting MACSio's exact
/// serialization-size function (bisection on the monotone dump-size curve).

#include <cstdint>

#include "macsio/params.hpp"

namespace amrio::model {

/// Forward Eq. (3).
std::uint64_t part_size_model(double f, std::int64_t ncells0, int nprocs);

/// Exact bytes MACSio produces for dump 0 with `part_size` substituted into
/// `base` (task documents only; the small root metadata file is excluded).
std::uint64_t macsio_dump0_bytes(const macsio::Params& base,
                                 std::uint64_t part_size);

struct PartSizeFit {
  std::uint64_t part_size = 0;  ///< fitted per-part request size
  double f = 0.0;               ///< implied Eq. (3) correction factor
  double achieved_bytes = 0.0;  ///< MACSio dump-0 bytes at the fit
  double target_bytes = 0.0;
  double rel_error = 0.0;       ///< |achieved-target| / target
};

/// Find part_size such that MACSio's first dump reproduces
/// `target_dump0_bytes` (the AMR run's first output event), then report the
/// implied correction factor f.
PartSizeFit fit_part_size(const macsio::Params& base, double target_dump0_bytes,
                          std::int64_t ncells0);

}  // namespace amrio::model

#pragma once
/// \file translate.hpp
/// The paper's Listing 1: the functional form `g` that maps AMReX Castro
/// inputs (plus measured run characteristics) onto a MACSio command line:
///
///   jsrun -n nproc macsio
///     --interface miftmpl
///     --parallel_file_mode MIF nproc
///     --num_dumps max_step/plot_int
///     --part_size f(amr.n_cell)                  <- Eq. (3) fit
///     --avg_num_parts 1
///     --vars_per_part 1
///     --compute_time f(platform, all_inputs)
///     --meta_size f(all_inputs)
///     --dataset_growth f(n_cell, cfl, max_level, ...)  <- calibration
///
/// plus the CFL × max_level interpolation table for a dataset_growth initial
/// guess (paper Appendix A step 4: "the greater the cfl and number of levels,
/// the greater the data_growth").

#include <span>
#include <vector>

#include "amr/inputs.hpp"
#include "macsio/params.hpp"
#include "model/calibrate.hpp"
#include "model/partsize.hpp"

namespace amrio::model {

/// Measured characteristics of one AMR run that feed the translation.
struct RunMeasurements {
  double first_output_bytes = 0.0;        ///< plt00000 total bytes
  std::vector<double> per_step_bytes;     ///< bytes of each output event
  double mean_step_seconds = 0.0;         ///< drives --compute_time
  double metadata_bytes_per_task = 0.0;   ///< drives --meta_size
};

struct TranslationResult {
  macsio::Params params;       ///< the complete MACSio invocation
  PartSizeFit part_size_fit;   ///< Eq. (3) fit (reports f)
  CalibrationResult calibration;
  std::string command_line;    ///< Listing-1 style rendering
};

/// The static (pre-calibration) part of Listing 1: everything that maps
/// directly from the inputs file.
macsio::Params static_translation(const amr::AmrInputs& inputs);

/// Full translation: static mapping, Eq. (3) part-size fit against the first
/// output, then dataset_growth calibration against the per-step series.
TranslationResult translate(const amr::AmrInputs& inputs,
                            const RunMeasurements& measured,
                            double growth_lo = 1.0, double growth_hi = 1.05);

/// Inverse-distance-weighted interpolation table over (cfl, max_level) for
/// dataset_growth initial guesses, built from completed calibrations.
class GrowthGuess {
 public:
  void add(double cfl, int max_level, double growth);
  /// IDW interpolation; exact hits return the stored value. Throws
  /// ContractViolation when the table is empty.
  double interpolate(double cfl, int max_level) const;
  std::size_t size() const { return points_.size(); }

 private:
  struct Point {
    double cfl;
    double level;
    double growth;
  };
  std::vector<Point> points_;
};

}  // namespace amrio::model

#include "model/calibrate.hpp"

#include <cmath>

#include "macsio/driver.hpp"
#include "macsio/interfaces.hpp"
#include "model/partsize.hpp"
#include "util/assert.hpp"

namespace amrio::model {

double series_objective(std::span<const double> proxy,
                        std::span<const double> target) {
  AMRIO_EXPECTS(proxy.size() == target.size());
  AMRIO_EXPECTS(!proxy.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < proxy.size(); ++i) {
    AMRIO_EXPECTS_MSG(target[i] > 0, "calibration target must be positive");
    const double rel = (proxy[i] - target[i]) / target[i];
    acc += rel * rel;
  }
  return std::sqrt(acc / static_cast<double>(proxy.size()));
}

std::vector<double> macsio_per_dump_bytes(const macsio::Params& params) {
  params.validate();
  const auto iface = macsio::make_interface(params.interface);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(params.num_dumps));
  for (int dump = 0; dump < params.num_dumps; ++dump) {
    const macsio::PartSpec spec = macsio::make_part_spec(
        params.part_bytes_at_dump(dump), params.vars_per_part);
    std::uint64_t bytes = 0;
    for (int rank = 0; rank < params.nprocs; ++rank) {
      const int nparts = params.parts_of_rank(rank);
      if (nparts == 0) continue;
      bytes += iface->task_doc_bytes(spec, rank, dump, nparts, params.meta_size);
    }
    // plus the root metadata document, sized exactly as the driver writes it
    bytes += macsio::root_meta_text(params, dump, spec, bytes).size();
    out.push_back(static_cast<double>(bytes));
  }
  return out;
}

CalibrationResult calibrate_growth(macsio::Params base,
                                   std::span<const double> target_per_step,
                                   double lo, double hi, int max_iters) {
  AMRIO_EXPECTS(!target_per_step.empty());
  AMRIO_EXPECTS(lo > 0 && hi > lo);
  base.num_dumps = static_cast<int>(target_per_step.size());

  CalibrationResult result;
  auto evaluate = [&](double growth) {
    macsio::Params p = base;
    p.dataset_growth = growth;
    CalibrationIterate it;
    it.growth = growth;
    it.per_dump = macsio_per_dump_bytes(p);
    it.objective = series_objective(it.per_dump, target_per_step);
    result.iterates.push_back(it);
    return it.objective;
  };

  // Golden-section search on the unimodal objective.
  const double gr = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo;
  double b = hi;
  double c = b - gr * (b - a);
  double d = a + gr * (b - a);
  double fc = evaluate(c);
  double fd = evaluate(d);
  for (int i = 0; i < max_iters; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - gr * (b - a);
      fc = evaluate(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + gr * (b - a);
      fd = evaluate(d);
    }
  }
  const double best = (fc < fd) ? c : d;
  result.best_growth = best;
  result.best_objective = std::min(fc, fd);
  result.params = base;
  result.params.dataset_growth = best;
  return result;
}

}  // namespace amrio::model

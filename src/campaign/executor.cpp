#include "campaign/executor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <set>
#include <thread>

#include "exec/engine.hpp"
#include "macsio/driver.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "pfs/backend.hpp"
#include "staging/drain.hpp"
#include "util/assert.hpp"

namespace amrio::campaign {

pfs::SimFsConfig reference_fs_config(int ranks, bool burst_buffer) {
  pfs::SimFsConfig cfg;
  cfg.n_ost = 32;
  cfg.ost_bandwidth = 0.8e9;
  cfg.client_bandwidth = 1.2e9;
  cfg.mds_latency = 5.0e-4;
  cfg.seed = 1234;
  cfg.bb.enabled = burst_buffer;
  cfg.bb.nodes = ranks / 16 > 1 ? ranks / 16 : 1;
  cfg.bb.ranks_per_node = 16;
  cfg.bb.write_bandwidth = 8.0e9;
  cfg.bb.drain_bandwidth = 1.5e9;
  cfg.bb.drain_concurrency = 2;
  return cfg;
}

CellResult run_cell(const CellConfig& cell) {
  macsio::Params params = resolved_params(cell);
  params.validate();

  // Everything below is cell-private (engine, backend, tracer, SimFs), so
  // concurrent run_cell calls never share mutable state — the property the
  // work-stealing pool and the TSan CI job lean on.
  pfs::MemoryBackend backend(/*store_contents=*/false);
  const auto engine = exec::make_engine(cell.study.engine, params.nprocs);
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  const obs::Probe probe{&tracer, &metrics};
  const macsio::DumpStats stats =
      macsio::run_macsio(*engine, params, backend, nullptr, probe);

  CellResult r;
  r.raw_bytes = stats.codec.total.raw_bytes;
  r.total_bytes = stats.total_bytes;
  r.nfiles = stats.nfiles;
  r.encode_seconds = stats.codec.total.encode_seconds;
  for (const pfs::IoRequest& req : stats.requests) {
    if (req.file.find("/data/") == std::string::npos) continue;
    r.encoded_bytes += req.bytes;
  }

  pfs::SimFs fs(reference_fs_config(params.nprocs, params.stage_to_bb));
  const staging::StagingReport report =
      staging::staging_report(fs.run(stats.requests, probe));
  r.dump_seconds = report.perceived.makespan;
  r.sustained_seconds = report.sustained.makespan;
  r.perceived_bandwidth = report.perceived_bandwidth;
  r.sustained_bandwidth = report.sustained_bandwidth;

  const obs::CriticalPathReport cp =
      obs::critical_path(tracer.spans(), tracer.edges());
  r.critical_stage = cp.critical_stage;
  r.critical_frac = cp.critical_frac;
  r.binding_resource = cp.binding_resource;

  if (params.restart) {
    const macsio::RestartStats restart =
        macsio::run_restart(*engine, params, backend, nullptr, probe);
    pfs::SimFs rfs(reference_fs_config(params.nprocs, params.restart_from_bb));
    const staging::StagingReport rreport =
        staging::staging_report(rfs.run(restart.requests, probe));
    r.restart_seconds = rreport.perceived.makespan;
    r.restart_decode_gate = restart.decode_gate;
  }
  return r;
}

CampaignExecutor::CampaignExecutor(ExecutorOptions opts)
    : opts_(std::move(opts)) {
  AMRIO_EXPECTS_MSG(opts_.jobs >= 1, "campaign: --jobs must be >= 1");
  if (!opts_.cache_path.empty()) cache_.load(opts_.cache_path);
}

std::vector<CellOutcome> CampaignExecutor::run(
    const std::vector<CellConfig>& cells) {
  std::vector<CellOutcome> outcomes(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    outcomes[i].name = cells[i].name;
    outcomes[i].key = canonical_key(cells[i]);
  }

  // In-flight dedup: the first worker to reach a key claims it; later
  // arrivals (same key from a duplicate cell) block until the claimant
  // publishes into the cache, then take the hit. This makes executed/hit
  // counts and every from_cache bit independent of thread interleaving.
  std::mutex inflight_mu;
  std::condition_variable inflight_cv;
  std::set<std::string> inflight;
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> steals{0};

  auto process = [&](std::size_t index) {
    CellOutcome& out = outcomes[index];
    bool claimed = false;
    {
      std::unique_lock<std::mutex> lock(inflight_mu);
      inflight_cv.wait(lock,
                       [&] { return inflight.count(out.key) == 0; });
      // Exactly one cache probe per cell, never while the key is in
      // flight — hit/miss counters stay --jobs-invariant.
      out.from_cache = cache_.lookup(out.key, &out.result);
      if (!out.from_cache) {
        inflight.insert(out.key);
        claimed = true;
      }
    }
    if (!claimed) {
      hits.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    out.result = run_cell(cells[index]);
    cache_.insert(out.key, out.result);
    executed.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(inflight_mu);
      inflight.erase(out.key);
    }
    inflight_cv.notify_all();
  };

  const int jobs =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(opts_.jobs), std::max<std::size_t>(
                                                    cells.size(), 1)));
  if (jobs <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) process(i);
  } else {
    // Sharded deques + stealing: worker w owns cells w, w+jobs, w+2*jobs...
    // and pops them front-to-back; an idle worker steals from the *back* of
    // a victim's deque (classic Chase–Lev shape, mutexes instead of a
    // lock-free deque — cells are milliseconds, not nanoseconds).
    std::vector<std::deque<std::size_t>> deques(jobs);
    std::vector<std::mutex> deque_mu(jobs);
    for (std::size_t i = 0; i < cells.size(); ++i)
      deques[i % jobs].push_back(i);

    auto worker = [&](int w) {
      for (;;) {
        std::size_t index = 0;
        bool got = false;
        {
          std::lock_guard<std::mutex> lock(deque_mu[w]);
          if (!deques[w].empty()) {
            index = deques[w].front();
            deques[w].pop_front();
            got = true;
          }
        }
        if (!got) {
          for (int off = 1; off < jobs && !got; ++off) {
            const int victim = (w + off) % jobs;
            std::lock_guard<std::mutex> lock(deque_mu[victim]);
            if (!deques[victim].empty()) {
              index = deques[victim].back();
              deques[victim].pop_back();
              got = true;
              steals.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        // No worker enqueues new cells, so empty-everywhere means done.
        if (!got) return;
        process(index);
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (int w = 0; w < jobs; ++w) pool.emplace_back(worker, w);
    for (std::thread& t : pool) t.join();
  }

  stats_.cells += cells.size();
  stats_.executed += executed.load();
  stats_.cache_hits += hits.load();
  stats_.steals += steals.load();
  if (!opts_.cache_path.empty()) cache_.save(opts_.cache_path);
  return outcomes;
}

}  // namespace amrio::campaign

#pragma once
/// \file report.hpp
/// Deterministic campaign output: one canonical CSV row per cell, sorted by
/// cell name (ties broken by canonical key), with *only* configuration and
/// virtual-clock columns — no wall-clock, no cache-hit bits, no scheduling
/// artifacts. The contract the determinism suite pins: the same grid
/// produces byte-identical rows at any --jobs value, on any engine, from
/// cold or warm cache.

#include <string>
#include <vector>

#include "campaign/cell.hpp"
#include "campaign/executor.hpp"
#include "util/csv.hpp"

namespace amrio::campaign {

/// Header of the canonical campaign CSV.
std::vector<std::string> csv_columns();

/// Render outcomes (aligned 1:1 with `cells`) into canonically ordered,
/// fully formatted CSV rows. Pure: same cells + same results → same rows.
std::vector<std::vector<std::string>> csv_rows(
    const std::vector<CellConfig>& cells,
    const std::vector<CellOutcome>& outcomes);

/// header + rows into a writer (the bench/CLI convenience).
void write_csv(util::CsvWriter& csv, const std::vector<CellConfig>& cells,
               const std::vector<CellOutcome>& outcomes);

}  // namespace amrio::campaign

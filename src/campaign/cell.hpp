#pragma once
/// \file cell.hpp
/// One campaign cell: a named {macsio::Params, core::StudyOptions} pair — a
/// single point of the Table III sweep {interface × file mode × codec ×
/// staging × engine × ranks}, plus everything else either struct carries.
/// `canonical_key` renders the *full* configuration into a schema-versioned
/// string: the result-cache key. Completeness is load-bearing (a missed
/// field = stale cache hits when that knob is swept), so the key covers
/// every field of both structs and tests/test_campaign.cpp walks each field
/// asserting the key moves. When a field lands in either struct, extend
/// `canonical_key` AND the property test AND bump the sizeof tripwires.

#include <string>

#include "core/study_options.hpp"
#include "macsio/params.hpp"

namespace amrio::campaign {

/// Cache-key schema version. Bump when the key format changes, a knob is
/// added, or any model underneath (driver, SimFs, codec, staging) changes
/// results for an unchanged configuration — persisted caches from other
/// versions are then ignored rather than served stale.
inline constexpr int kCacheSchemaVersion = 1;

struct CellConfig {
  /// Display label for tables/CSV; deliberately NOT part of the cache key —
  /// two differently-named cells with the same configuration share a result.
  std::string name;
  macsio::Params params;
  core::StudyOptions study;
};

/// The canonicalized configuration string: "amrio-campaign-v<schema>|" then
/// every field of `params` and `study` as `name=value`, doubles in %.17g
/// (round-trip exact), in struct declaration order. Pure function of the
/// configuration — identical across processes, runs, and --jobs values.
std::string canonical_key(const CellConfig& cell);

/// The macsio::Params the executor actually runs: `cell.params` with the
/// study's codec/restart knobs folded in (the same projection
/// core::calibrate_and_validate applies before executing a proxy).
macsio::Params resolved_params(const CellConfig& cell);

}  // namespace amrio::campaign

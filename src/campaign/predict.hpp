#pragma once
/// \file predict.hpp
/// The campaign's query front end: fit the paper's Eq. (3)-style log–log
/// regression over executed cells and answer dump/restart-time what-if
/// queries for configurations that were never simulated.
///
/// Model: within a stratum (interface × file mode × staging × codec family ×
/// restart path — the axes that change the *shape* of the I/O timeline),
/// log(dump_seconds) is fit against [log(encoded_bytes), log(nprocs)] with
/// `model::fit_multilinear`. Degenerate strata (collinear features — e.g.
/// encoded bytes strictly proportional to ranks — or too few points) fall
/// back to a single-feature log–log fit, then to the stratum mean, so every
/// fitted stratum answers. Queries for a stratum the fit never saw fall back
/// to a global all-cells fit.
///
/// The encoded-byte feature of an *unseen* cell is computed analytically —
/// `IoInterface::task_doc_bytes` gives exact document sizes and
/// `codec::Codec::plan` is pure in the raw size — so prediction never runs
/// an engine, a backend, or SimFs.
///
/// Honesty metric: `calibration_error()` reports the in-sample mean absolute
/// relative error of the dump-time fit; `report()` prints it next to every
/// answer path so a consumer can see how far to trust an interpolation.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "campaign/cell.hpp"
#include "campaign/executor.hpp"
#include "model/regression.hpp"

namespace amrio::campaign {

class PredictService {
 public:
  /// Fit from executed cells (outcomes aligned 1:1 with `cells`). Cells with
  /// zero bytes or non-positive dump time are skipped. Replaces any prior
  /// fit. Throws ContractViolation when nothing is fittable.
  void fit(const std::vector<CellConfig>& cells,
           const std::vector<CellOutcome>& outcomes);

  struct Prediction {
    double dump_seconds = 0.0;
    /// 0 when the stratum carries no restart observations.
    double restart_seconds = 0.0;
    /// Analytic encoded data bytes of the queried cell (exact, not fitted).
    std::uint64_t encoded_bytes = 0;
    std::string stratum;       ///< stratum that answered ("" = global fit)
    bool exact_stratum = false; ///< true: the cell's own stratum was fitted
  };

  /// Answer a what-if query without simulating. Requires a prior fit().
  Prediction predict(const CellConfig& cell) const;

  /// In-sample mean absolute relative error of the dump-time fit.
  double calibration_error() const { return calibration_error_; }
  std::size_t fitted_cells() const { return fitted_cells_; }
  std::size_t strata() const { return strata_.size(); }

  /// One-line human summary: strata, observations, calibration error.
  std::string report() const;

  /// The stratum key of a cell: the axes that change the timeline's shape.
  static std::string stratum_key(const CellConfig& cell);

  /// Exact encoded data-file bytes of a cell, computed without simulation
  /// (task_doc_bytes × ranks × dumps through the codec plan). Equals the
  /// `encoded_bytes` a real execution reports.
  static std::uint64_t predicted_cell_bytes(const CellConfig& cell);

 private:
  struct Stratum {
    model::MultiFit dump_fit;     ///< beta over [1, log bytes, log ranks]
    model::MultiFit restart_fit;  ///< same features; valid iff has_restart
    bool has_restart = false;
    std::size_t n = 0;
  };

  static Stratum fit_stratum(const std::vector<std::vector<double>>& rows,
                             const std::vector<double>& log_dump,
                             const std::vector<double>& log_restart);

  std::map<std::string, Stratum> strata_;
  Stratum global_;
  double calibration_error_ = 0.0;
  std::size_t fitted_cells_ = 0;
};

}  // namespace amrio::campaign

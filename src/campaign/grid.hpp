#pragma once
/// \file grid.hpp
/// Sweep-grid construction: the cross product {interface × staging mode ×
/// codec point × engine × ranks} expanded into CellConfigs with canonical
/// names. `table3_grid()` is the default campaign — the paper's Table III
/// axes at bench scale, sized so the full product clears 500 cells.

#include <string>
#include <vector>

#include "campaign/cell.hpp"

namespace amrio::campaign {

/// One codec sweep point. `var_bounds` non-empty selects the AMRIC-style
/// per-variable ebl model (comma-separated bounds, e.g. density loose /
/// pressure tight) and supersedes `error_bound`.
struct CodecPoint {
  std::string label;       ///< row label, e.g. "ebl@1e-3" or "ebl@vars"
  std::string codec;       ///< "identity" | "lossless" | "ebl"
  double error_bound = 1.0e-3;
  std::string var_bounds;  ///< per-variable bounds CSV ("" = uniform)
};

/// One staging configuration of the dump path.
struct StagingMode {
  std::string label;  ///< "direct" | "agg" | "bb" | "agg+bb" | "sif" | ...
  macsio::FileMode file_mode = macsio::FileMode::kMif;
  bool aggregate = false;     ///< two-phase aggregation (MIF only)
  bool burst_buffer = false;  ///< stage dumps to the BB tier
};

struct GridSpec {
  std::vector<macsio::Interface> interfaces;
  std::vector<StagingMode> stagings;
  std::vector<CodecPoint> codecs;
  std::vector<exec::EngineKind> engines;
  std::vector<int> rank_counts;

  // per-cell workload shape (shared across the grid)
  int num_dumps = 2;
  std::uint64_t part_size = 1 << 16;
  int vars_per_part = 2;  ///< >= 2 so per-variable bounds have two variables
  double dataset_growth = 1.02;
  double codec_throughput = 0.25e9;
  int agg_factor = 8;  ///< aggregators = ranks / agg_factor (min 1)
};

/// Expand the cross product into cells. Cell names are
/// "<interface>/<staging>/<codec>/<engine>/r<ranks>"; invalid combinations
/// (aggregation under SIF) are skipped by construction because StagingMode
/// carries its own file mode.
std::vector<CellConfig> make_grid(const GridSpec& spec);

/// The default campaign grid: 3 interfaces × 6 staging modes (MIF direct/
/// agg/bb/agg+bb, SIF direct/bb) × 4 codec points (identity, lossless,
/// uniform ebl, per-variable ebl) × 2 engines (serial, event) × 4 rank
/// counts = 576 cells.
GridSpec table3_grid();

}  // namespace amrio::campaign

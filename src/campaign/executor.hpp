#pragma once
/// \file executor.hpp
/// The sharded campaign executor: run thousands of sweep cells across a
/// worker pool with work stealing, deduplicating through the shared
/// ResultCache. Determinism contract: the outcome vector (cell order,
/// per-cell results, executed/hit totals) is identical for any --jobs value
/// — each cell executes in a private engine/backend/tracer, results land at
/// the cell's input index, and duplicate keys are claimed exactly once via
/// an in-flight table (later claimants block until the first finishes and
/// then count as hits, whatever the thread interleaving). Only
/// ExecutorStats::steals is scheduling-dependent; it never reaches an
/// artifact.

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/cell.hpp"
#include "campaign/result.hpp"
#include "pfs/simfs.hpp"

namespace amrio::campaign {

struct ExecutorOptions {
  /// Worker threads. 1 = run inline on the caller (no threads spawned).
  int jobs = 1;
  /// When non-empty: load this JSON cache before the run and save it back
  /// after, so a later process re-running the sweep hits warm.
  std::string cache_path;
};

struct CellOutcome {
  std::string name;        ///< CellConfig::name
  std::string key;         ///< canonical_key of the cell
  CellResult result;
  bool from_cache = false; ///< true: served by cache or in-flight dedup
};

struct ExecutorStats {
  std::uint64_t cells = 0;      ///< outcomes produced
  std::uint64_t executed = 0;   ///< cells actually simulated
  std::uint64_t cache_hits = 0; ///< cells + in-flight waits served cached
  /// Tasks a worker popped from another worker's deque. Scheduling noise —
  /// reporting only, never part of a determinism-checked artifact.
  std::uint64_t steals = 0;
};

/// Reference PFS + burst-buffer model every campaign cell is timed against
/// (one definition, shared with bench::study_fs_config, so campaign CSVs
/// stay cross-comparable with the staging/codec extension studies).
pfs::SimFsConfig reference_fs_config(int ranks, bool burst_buffer);

/// Execute one cell end to end: run the MACSio proxy on the cell's engine,
/// replay its requests through `reference_fs_config`, attribute the critical
/// path, optionally read the last dump back. Pure function of the cell —
/// this is what the executor runs under a cache miss.
CellResult run_cell(const CellConfig& cell);

class CampaignExecutor {
 public:
  explicit CampaignExecutor(ExecutorOptions opts = {});

  /// Run every cell (deduplicating by canonical key) and return one outcome
  /// per input cell, in input order. Callable repeatedly; the cache and
  /// stats accumulate across calls.
  std::vector<CellOutcome> run(const std::vector<CellConfig>& cells);

  const ExecutorStats& stats() const { return stats_; }
  ResultCache& cache() { return cache_; }
  const ResultCache& cache() const { return cache_; }
  const ExecutorOptions& options() const { return opts_; }

 private:
  ExecutorOptions opts_;
  ResultCache cache_;
  ExecutorStats stats_;
};

}  // namespace amrio::campaign

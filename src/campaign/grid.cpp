#include "campaign/grid.hpp"

namespace amrio::campaign {

std::vector<CellConfig> make_grid(const GridSpec& spec) {
  std::vector<CellConfig> cells;
  for (const macsio::Interface iface : spec.interfaces) {
    for (const StagingMode& mode : spec.stagings) {
      for (const CodecPoint& codec : spec.codecs) {
        for (const exec::EngineKind engine : spec.engines) {
          for (const int ranks : spec.rank_counts) {
            CellConfig cell;
            cell.name = std::string(macsio::to_string(iface)) + "/" +
                        mode.label + "/" + codec.label + "/" +
                        exec::engine_kind_name(engine) + "/r" +
                        std::to_string(ranks);
            cell.params.interface = iface;
            cell.params.file_mode = mode.file_mode;
            cell.params.nprocs = ranks;
            cell.params.num_dumps = spec.num_dumps;
            cell.params.part_size = spec.part_size;
            cell.params.vars_per_part = spec.vars_per_part;
            cell.params.dataset_growth = spec.dataset_growth;
            cell.params.compute_time = 0.0;
            if (mode.aggregate) {
              const int aggs = ranks / spec.agg_factor;
              cell.params.aggregators = aggs > 1 ? aggs : 1;
            }
            cell.params.stage_to_bb = mode.burst_buffer;
            cell.study.engine = engine;
            cell.study.codec = codec.codec;
            cell.study.codec_error_bound =
                codec.error_bound > 0.0 ? codec.error_bound : 1.0e-3;
            cell.study.codec_var_bounds = codec.var_bounds;
            cell.study.codec_throughput = spec.codec_throughput;
            cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return cells;
}

GridSpec table3_grid() {
  GridSpec spec;
  spec.interfaces = {macsio::Interface::kMiftmpl, macsio::Interface::kH5Lite,
                     macsio::Interface::kRaw};
  spec.stagings = {
      {"direct", macsio::FileMode::kMif, false, false},
      {"agg", macsio::FileMode::kMif, true, false},
      {"bb", macsio::FileMode::kMif, false, true},
      {"agg+bb", macsio::FileMode::kMif, true, true},
      {"sif", macsio::FileMode::kSif, false, false},
      {"sif+bb", macsio::FileMode::kSif, false, true},
  };
  spec.codecs = {
      {"identity", "identity", 0.0, ""},
      {"lossless", "lossless", 0.0, ""},
      {"ebl@1e-3", "ebl", 1.0e-3, ""},
      // per-variable bounds: density loose, pressure tight (AMRIC's framing)
      {"ebl@vars", "ebl", 1.0e-3, "1e-2,1e-5"},
  };
  spec.engines = {exec::EngineKind::kSerial, exec::EngineKind::kEvent};
  spec.rank_counts = {8, 16, 32, 64};
  return spec;
}

}  // namespace amrio::campaign

#include "campaign/report.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/format.hpp"

namespace amrio::campaign {

std::vector<std::string> csv_columns() {
  return {"cell",
          "interface",
          "file_mode",
          "staging",
          "codec",
          "error_bound",
          "var_bounds",
          "engine",
          "ranks",
          "raw_bytes",
          "encoded_bytes",
          "total_bytes",
          "nfiles",
          "encode_s",
          "dump_s",
          "sustained_s",
          "perceived_bw",
          "sustained_bw",
          "critical_stage",
          "critical_frac",
          "binding_resource",
          "restart_s",
          "restart_decode_gate"};
}

std::vector<std::vector<std::string>> csv_rows(
    const std::vector<CellConfig>& cells,
    const std::vector<CellOutcome>& outcomes) {
  AMRIO_EXPECTS(cells.size() == outcomes.size());
  std::vector<std::size_t> order(cells.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (outcomes[a].name != outcomes[b].name)
      return outcomes[a].name < outcomes[b].name;
    return outcomes[a].key < outcomes[b].key;
  });

  std::vector<std::vector<std::string>> rows;
  rows.reserve(cells.size());
  for (const std::size_t i : order) {
    const CellConfig& cell = cells[i];
    const macsio::Params p = resolved_params(cell);
    const CellResult& r = outcomes[i].result;
    std::string staging = p.aggregators > 0 ? "agg" : "direct";
    if (p.stage_to_bb) staging = p.aggregators > 0 ? "agg+bb" : "bb";
    rows.push_back({
        outcomes[i].name,
        macsio::to_string(p.interface),
        macsio::to_string(p.file_mode),
        staging,
        p.codec,
        util::format_g(p.codec_error_bound, 12),
        p.codec_var_bounds,
        exec::engine_kind_name(cell.study.engine),
        std::to_string(p.nprocs),
        std::to_string(r.raw_bytes),
        std::to_string(r.encoded_bytes),
        std::to_string(r.total_bytes),
        std::to_string(r.nfiles),
        util::format_g(r.encode_seconds, 12),
        util::format_g(r.dump_seconds, 12),
        util::format_g(r.sustained_seconds, 12),
        util::format_g(r.perceived_bandwidth, 12),
        util::format_g(r.sustained_bandwidth, 12),
        r.critical_stage,
        util::format_g(r.critical_frac, 12),
        r.binding_resource,
        util::format_g(r.restart_seconds, 12),
        util::format_g(r.restart_decode_gate, 12),
    });
  }
  return rows;
}

void write_csv(util::CsvWriter& csv, const std::vector<CellConfig>& cells,
               const std::vector<CellOutcome>& outcomes) {
  csv.header(csv_columns());
  for (const auto& row : csv_rows(cells, outcomes)) csv.row(row);
}

}  // namespace amrio::campaign

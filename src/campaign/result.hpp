#pragma once
/// \file result.hpp
/// The deterministic per-cell result record the campaign carries: byte
/// ledger, modeled timings (virtual clock only — wall-clock never enters a
/// CellResult, so cached and freshly-executed cells are indistinguishable),
/// and the obs/critical-path attribution columns.

#include <cstdint>
#include <string>

namespace amrio::campaign {

struct CellResult {
  // byte ledger (raw stays conserved; encoded is what travels/lands)
  std::uint64_t raw_bytes = 0;
  std::uint64_t encoded_bytes = 0;
  std::uint64_t total_bytes = 0;  ///< incl. metadata, raw accounting
  std::uint64_t nfiles = 0;

  // modeled timings (virtual seconds)
  double encode_seconds = 0.0;       ///< codec cpu on the write path
  double dump_seconds = 0.0;         ///< perceived makespan (SimFs replay)
  double sustained_seconds = 0.0;    ///< PFS-sustained makespan
  double perceived_bandwidth = 0.0;
  double sustained_bandwidth = 0.0;

  // critical-path attribution (obs::critical_path over the cell's spans)
  std::string critical_stage;
  double critical_frac = 0.0;
  std::string binding_resource;

  // restart read-back (zero unless StudyOptions::restart)
  double restart_seconds = 0.0;      ///< perceived restart-read makespan
  double restart_decode_gate = 0.0;  ///< slowest per-rank decode cpu
};

}  // namespace amrio::campaign

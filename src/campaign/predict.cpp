#include "campaign/predict.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "codec/codec.hpp"
#include "macsio/interfaces.hpp"
#include "util/assert.hpp"

namespace amrio::campaign {

namespace {

double eval_fit(const model::MultiFit& fit, const std::vector<double>& x) {
  double y = fit.beta.empty() ? 0.0 : fit.beta[0];
  for (std::size_t j = 0; j + 1 < fit.beta.size() && j < x.size(); ++j)
    y += fit.beta[j + 1] * x[j];
  return y;
}

double variance(const std::vector<std::vector<double>>& rows, std::size_t col) {
  double mean = 0.0;
  for (const auto& r : rows) mean += r[col];
  mean /= static_cast<double>(rows.size());
  double var = 0.0;
  for (const auto& r : rows) var += (r[col] - mean) * (r[col] - mean);
  return var / static_cast<double>(rows.size());
}

/// OLS with a degeneracy ladder: both features → the one that varies → the
/// mean. Collinear designs (encoded bytes exactly proportional to ranks —
/// the identity-codec case) are detected up front via the feature
/// correlation, not left to blow up the normal equations.
model::MultiFit robust_fit(const std::vector<std::vector<double>>& rows,
                           const std::vector<double>& y) {
  AMRIO_EXPECTS(!rows.empty() && rows.size() == y.size());
  constexpr double kVarEps = 1e-12;
  const double v0 = variance(rows, 0);
  const double v1 = variance(rows, 1);
  if (rows.size() >= 4 && v0 > kVarEps && v1 > kVarEps) {
    double m0 = 0.0;
    double m1 = 0.0;
    for (const auto& r : rows) {
      m0 += r[0];
      m1 += r[1];
    }
    m0 /= static_cast<double>(rows.size());
    m1 /= static_cast<double>(rows.size());
    double cov = 0.0;
    for (const auto& r : rows) cov += (r[0] - m0) * (r[1] - m1);
    cov /= static_cast<double>(rows.size());
    const double corr2 = cov * cov / (v0 * v1);
    if (corr2 < 0.999) {
      try {
        return model::fit_multilinear(rows, y);
      } catch (const ContractViolation&) {
        // fall through to the single-feature ladder
      }
    }
  }
  for (const std::size_t col : {std::size_t{0}, std::size_t{1}}) {
    if ((col == 0 ? v0 : v1) <= kVarEps || rows.size() < 2) continue;
    std::vector<double> x;
    x.reserve(rows.size());
    for (const auto& r : rows) x.push_back(r[col]);
    try {
      const model::LinearFit lf = model::fit_linear(x, y);
      model::MultiFit fit;
      fit.beta = {lf.intercept, 0.0, 0.0};
      fit.beta[col + 1] = lf.slope;
      fit.r2 = lf.r2;
      fit.rmse = lf.rmse;
      return fit;
    } catch (const ContractViolation&) {
    }
  }
  double mean = 0.0;
  for (const double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  model::MultiFit fit;
  fit.beta = {mean, 0.0, 0.0};
  fit.r2 = 1.0;
  return fit;
}

}  // namespace

std::string PredictService::stratum_key(const CellConfig& cell) {
  const macsio::Params p = resolved_params(cell);
  std::string key = macsio::to_string(p.interface);
  key += '|';
  key += macsio::to_string(p.file_mode);
  key += p.aggregators > 0 ? "|agg" : "|noagg";
  key += p.stage_to_bb ? "|bb" : "|pfs";
  key += '|';
  key += p.codec;
  key += p.restart ? "|restart" : "|norestart";
  key += p.restart_from_bb ? "|rbb" : "|rpfs";
  return key;
}

std::uint64_t PredictService::predicted_cell_bytes(const CellConfig& cell) {
  const macsio::Params p = resolved_params(cell);
  const auto iface = macsio::make_interface(p.interface);
  const auto cdc = codec::make_codec(p.codec_spec());
  const std::int64_t total =
      std::llround(p.avg_num_parts * static_cast<double>(p.nprocs));
  const std::int64_t base = total / p.nprocs;
  const std::int64_t extras = total % p.nprocs;

  std::uint64_t bytes = 0;
  for (int dump = 0; dump < p.num_dumps; ++dump) {
    const macsio::PartSpec spec =
        macsio::make_part_spec(p.part_bytes_at_dump(dump), p.vars_per_part);
    // Ranks [0, extras) own base+1 parts, the rest own base. Document bytes
    // are rank-invariant except for the printed rank id (miftmpl renders it
    // unpadded, so width grows at every power of ten), so split ranges at
    // the decimal-width boundaries and price one representative rank per
    // homogeneous range — O(dumps · log nprocs), never O(nprocs · dumps).
    const auto add_range = [&](int lo, int hi, int nparts) {
      static constexpr int kWidthCuts[] = {10,     100,     1000,   10000,
                                           100000, 1000000, 10000000};
      int s = lo;
      while (s < hi) {
        int e = hi;
        for (const int cut : kWidthCuts)
          if (cut > s && cut < e) e = cut;
        const std::uint64_t doc =
            iface->task_doc_bytes(spec, s, dump, nparts, p.meta_size);
        bytes += cdc->plan(doc).out_bytes *
                 static_cast<std::uint64_t>(e - s);
        s = e;
      }
    };
    add_range(0, static_cast<int>(extras), static_cast<int>(base) + 1);
    add_range(static_cast<int>(extras), p.nprocs, static_cast<int>(base));
  }
  return bytes;
}

PredictService::Stratum PredictService::fit_stratum(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& log_dump,
    const std::vector<double>& log_restart) {
  Stratum s;
  s.n = rows.size();
  s.dump_fit = robust_fit(rows, log_dump);
  // restart observations are the subset of rows with a positive restart
  // time; log_restart carries NaN for the rest
  std::vector<std::vector<double>> rrows;
  std::vector<double> ry;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (std::isnan(log_restart[i])) continue;
    rrows.push_back(rows[i]);
    ry.push_back(log_restart[i]);
  }
  if (!rrows.empty()) {
    s.restart_fit = robust_fit(rrows, ry);
    s.has_restart = true;
  }
  return s;
}

void PredictService::fit(const std::vector<CellConfig>& cells,
                         const std::vector<CellOutcome>& outcomes) {
  AMRIO_EXPECTS(cells.size() == outcomes.size());
  strata_.clear();
  global_ = Stratum{};
  calibration_error_ = 0.0;
  fitted_cells_ = 0;

  struct Group {
    std::vector<std::vector<double>> rows;
    std::vector<double> log_dump;
    std::vector<double> log_restart;
  };
  std::map<std::string, Group> groups;
  Group all;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& r = outcomes[i].result;
    if (r.encoded_bytes == 0 || r.dump_seconds <= 0.0) continue;
    const std::vector<double> x = {
        std::log(static_cast<double>(r.encoded_bytes)),
        std::log(static_cast<double>(resolved_params(cells[i]).nprocs))};
    const double ld = std::log(r.dump_seconds);
    const double lr = r.restart_seconds > 0.0 ? std::log(r.restart_seconds)
                                              : std::nan("");
    Group& g = groups[stratum_key(cells[i])];
    g.rows.push_back(x);
    g.log_dump.push_back(ld);
    g.log_restart.push_back(lr);
    all.rows.push_back(x);
    all.log_dump.push_back(ld);
    all.log_restart.push_back(lr);
  }
  AMRIO_EXPECTS_MSG(!all.rows.empty(),
                    "PredictService::fit: no fittable cells");

  for (const auto& [key, g] : groups)
    strata_[key] = fit_stratum(g.rows, g.log_dump, g.log_restart);
  global_ = fit_stratum(all.rows, all.log_dump, all.log_restart);
  fitted_cells_ = all.rows.size();

  // in-sample calibration: what the stratum fits (the ones that answer
  // queries) reproduce of their own training cells
  double acc = 0.0;
  for (const auto& [key, g] : groups) {
    const Stratum& s = strata_[key];
    for (std::size_t i = 0; i < g.rows.size(); ++i) {
      const double pred = std::exp(eval_fit(s.dump_fit, g.rows[i]));
      const double actual = std::exp(g.log_dump[i]);
      acc += std::abs(pred - actual) / actual;
    }
  }
  calibration_error_ = acc / static_cast<double>(fitted_cells_);
}

PredictService::Prediction PredictService::predict(
    const CellConfig& cell) const {
  AMRIO_EXPECTS_MSG(fitted_cells_ > 0,
                    "PredictService::predict called before fit()");
  Prediction out;
  out.encoded_bytes = predicted_cell_bytes(cell);
  const macsio::Params p = resolved_params(cell);
  const std::vector<double> x = {
      std::log(static_cast<double>(
          std::max<std::uint64_t>(out.encoded_bytes, 1))),
      std::log(static_cast<double>(p.nprocs))};
  const std::string key = stratum_key(cell);
  const auto it = strata_.find(key);
  out.exact_stratum = it != strata_.end();
  out.stratum = out.exact_stratum ? key : std::string();
  const Stratum& s = out.exact_stratum ? it->second : global_;
  out.dump_seconds = std::exp(eval_fit(s.dump_fit, x));
  if (s.has_restart) out.restart_seconds = std::exp(eval_fit(s.restart_fit, x));
  return out;
}

std::string PredictService::report() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "predict: %zu strata over %zu cells; calibration error "
                "(mean abs rel, in-sample): %.2f%%",
                strata_.size(), fitted_cells_, 100.0 * calibration_error_);
  return buf;
}

}  // namespace amrio::campaign

#include "campaign/cache.hpp"

#include <fstream>
#include <stdexcept>

#include "campaign/cell.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"

namespace amrio::campaign {

bool ResultCache::lookup(const std::string& key, CellResult* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  if (out != nullptr) *out = it->second;
  return true;
}

void ResultCache::insert(const std::string& key, const CellResult& result) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[key] = result;
}

bool ResultCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(key) != 0;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t ResultCache::load(const std::string& path) {
  std::ifstream probe(path);
  if (!probe) return 0;  // cold run: no cache file yet
  probe.close();

  const util::JsonValue doc = util::parse_json_file(path);
  if (!doc.is_object())
    throw std::runtime_error("campaign cache: '" + path +
                             "' is not a JSON object");
  if (doc.u64_or("schema_version", 0) !=
      static_cast<std::uint64_t>(kCacheSchemaVersion))
    return 0;  // other schema: start cold rather than serve stale results
  const util::JsonValue* entries = doc.find("entries");
  if (entries == nullptr || !entries->is_array()) return 0;

  std::lock_guard<std::mutex> lock(mu_);
  std::size_t loaded = 0;
  for (const util::JsonValue& e : entries->items) {
    if (!e.is_object()) continue;
    const std::string key = e.string_or("key", "");
    if (key.empty()) continue;
    CellResult r;
    r.raw_bytes = e.u64_or("raw_bytes", 0);
    r.encoded_bytes = e.u64_or("encoded_bytes", 0);
    r.total_bytes = e.u64_or("total_bytes", 0);
    r.nfiles = e.u64_or("nfiles", 0);
    r.encode_seconds = e.number_or("encode_seconds", 0.0);
    r.dump_seconds = e.number_or("dump_seconds", 0.0);
    r.sustained_seconds = e.number_or("sustained_seconds", 0.0);
    r.perceived_bandwidth = e.number_or("perceived_bandwidth", 0.0);
    r.sustained_bandwidth = e.number_or("sustained_bandwidth", 0.0);
    r.critical_stage = e.string_or("critical_stage", "");
    r.critical_frac = e.number_or("critical_frac", 0.0);
    r.binding_resource = e.string_or("binding_resource", "");
    r.restart_seconds = e.number_or("restart_seconds", 0.0);
    r.restart_decode_gate = e.number_or("restart_decode_gate", 0.0);
    entries_[key] = r;
    ++loaded;
  }
  return loaded;
}

void ResultCache::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw std::runtime_error("campaign cache: cannot write '" + path + "'");
  util::JsonWriter w(out, /*pretty=*/true);
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();
  w.key("schema_version").value(kCacheSchemaVersion);
  w.key("entries").begin_array();
  for (const auto& [key, r] : entries_) {
    w.begin_object();
    w.key("key").value(key);
    w.key("raw_bytes").value(r.raw_bytes);
    w.key("encoded_bytes").value(r.encoded_bytes);
    w.key("total_bytes").value(r.total_bytes);
    w.key("nfiles").value(r.nfiles);
    w.key("encode_seconds").value(r.encode_seconds);
    w.key("dump_seconds").value(r.dump_seconds);
    w.key("sustained_seconds").value(r.sustained_seconds);
    w.key("perceived_bandwidth").value(r.perceived_bandwidth);
    w.key("sustained_bandwidth").value(r.sustained_bandwidth);
    w.key("critical_stage").value(r.critical_stage);
    w.key("critical_frac").value(r.critical_frac);
    w.key("binding_resource").value(r.binding_resource);
    w.key("restart_seconds").value(r.restart_seconds);
    w.key("restart_decode_gate").value(r.restart_decode_gate);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace amrio::campaign

#include "campaign/cell.hpp"

#include "util/format.hpp"

namespace amrio::campaign {

namespace {

/// Field renderers: one call per struct field, in declaration order, so a
/// reviewer can diff this file against params.hpp/study_options.hpp and see
/// the 1:1 coverage. Strings are length-prefixed to keep '|'/'=' inside
/// values from colliding with the separator grammar.
void put(std::string& key, const char* name, const std::string& v) {
  key += '|';
  key += name;
  key += '=';
  key += std::to_string(v.size());
  key += ':';
  key += v;
}

void put(std::string& key, const char* name, const char* v) {
  put(key, name, std::string(v));
}

void put(std::string& key, const char* name, double v) {
  key += '|';
  key += name;
  key += '=';
  key += util::format_g(v, 17);
}

void put(std::string& key, const char* name, std::uint64_t v) {
  key += '|';
  key += name;
  key += '=';
  key += std::to_string(v);
}

void put(std::string& key, const char* name, int v) {
  key += '|';
  key += name;
  key += '=';
  key += std::to_string(v);
}

void put(std::string& key, const char* name, bool v) {
  key += '|';
  key += name;
  key += v ? "=1" : "=0";
}

}  // namespace

std::string canonical_key(const CellConfig& cell) {
  const macsio::Params& p = resolved_params(cell);
  const core::StudyOptions& s = cell.study;
  std::string key = "amrio-campaign-v" + std::to_string(kCacheSchemaVersion);

  // macsio::Params, declaration order. The study knobs were folded into `p`
  // by resolved_params, so the key prices what actually runs.
  put(key, "interface", macsio::to_string(p.interface));
  put(key, "file_mode", macsio::to_string(p.file_mode));
  put(key, "mif_files", p.mif_files);
  put(key, "num_dumps", p.num_dumps);
  put(key, "part_size", p.part_size);
  put(key, "avg_num_parts", p.avg_num_parts);
  put(key, "vars_per_part", p.vars_per_part);
  put(key, "compute_time", p.compute_time);
  put(key, "meta_size", p.meta_size);
  put(key, "dataset_growth", p.dataset_growth);
  put(key, "aggregators", p.aggregators);
  put(key, "agg_link_bandwidth", p.agg_link_bandwidth);
  put(key, "stage_to_bb", p.stage_to_bb);
  put(key, "codec", p.codec);
  put(key, "codec_error_bound", p.codec_error_bound);
  put(key, "codec_var_bounds", p.codec_var_bounds);
  put(key, "codec_throughput", p.codec_throughput);
  put(key, "codec_decode_throughput", p.codec_decode_throughput);
  put(key, "restart", p.restart);
  put(key, "restart_from_bb", p.restart_from_bb);
  put(key, "prefetch_streams", p.prefetch_streams);
  put(key, "nprocs", p.nprocs);
  // output_dir shapes results: file names hash onto OSTs in SimFs.
  put(key, "output_dir", p.output_dir);
  put(key, "fill", p.fill == macsio::FillMode::kSized ? "sized" : "real");
  put(key, "seed", p.seed);

  // core::StudyOptions, declaration order. The codec/restart fields repeat
  // what resolved_params folded into `p` — harmless redundancy, and it keeps
  // "every StudyOptions field moves the key" true by inspection.
  put(key, "study_engine", exec::engine_kind_name(s.engine));
  put(key, "study_codec", s.codec);
  put(key, "study_codec_error_bound", s.codec_error_bound);
  put(key, "study_codec_var_bounds", s.codec_var_bounds);
  put(key, "study_codec_throughput", s.codec_throughput);
  put(key, "study_codec_decode_throughput", s.codec_decode_throughput);
  put(key, "study_restart", s.restart);
  put(key, "study_restart_from_bb", s.restart_from_bb);
  put(key, "study_trace_out", s.trace_out);
  put(key, "study_metrics_out", s.metrics_out);
  put(key, "study_explain_out", s.explain_out);
  return key;
}

macsio::Params resolved_params(const CellConfig& cell) {
  macsio::Params p = cell.params;
  p.codec = cell.study.codec;
  p.codec_error_bound = cell.study.codec_error_bound;
  p.codec_var_bounds = cell.study.codec_var_bounds;
  p.codec_throughput = cell.study.codec_throughput;
  p.codec_decode_throughput = cell.study.codec_decode_throughput;
  p.restart = cell.study.restart;
  p.restart_from_bb = cell.study.restart_from_bb;
  return p;
}

}  // namespace amrio::campaign

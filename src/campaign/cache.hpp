#pragma once
/// \file cache.hpp
/// Result cache for campaign cells: canonical_key → CellResult, shared by
/// every executor worker (thread-safe), persistable as JSON so re-runs in a
/// later process hit too. Entries live under the key's embedded schema
/// version; a persisted cache written by a different schema is ignored on
/// load instead of served stale. See docs/CAMPAIGN.md for the file format.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "campaign/result.hpp"

namespace amrio::campaign {

class ResultCache {
 public:
  /// True (and fills *out) when `key` is cached. Counts a hit/miss.
  bool lookup(const std::string& key, CellResult* out) const;
  /// Insert or overwrite.
  void insert(const std::string& key, const CellResult& result);
  bool contains(const std::string& key) const;

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

  /// Load entries from a JSON cache file. A missing file is an empty cache
  /// (the cold-run case), a schema_version mismatch discards the file's
  /// entries; malformed JSON throws std::runtime_error. Returns the number
  /// of entries loaded.
  std::size_t load(const std::string& path);
  /// Persist every entry as JSON (sorted by key — deterministic bytes).
  void save(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, CellResult> entries_;  ///< sorted: stable save order
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace amrio::campaign

#pragma once
/// \file case_def.hpp
/// The paper's experiment matrix. Table III ranges (Sedov on Summit):
///
///   amr.max_step   40 – 1000        amr.n_cell  32² – 131072²
///   amr.max_level  2 – 4            amr.plot_int 1 – 20
///   castro.cfl     0.3 – 0.6        nprocs      1 – 1024
///
/// plus the named pivots: case4 (512², 32 tasks, 20 outputs — Figs. 6/7/9/10),
/// case27 (1024², 64 tasks — Fig. 8), and the "large" case (8192² on 64
/// nodes — Fig. 11). Each factory takes a `scale` in (0, 1] mapping the paper
/// geometry down to laptop size (scale 1 = paper scale); EXPERIMENTS.md
/// records the default used per experiment.

#include <string>
#include <vector>

#include "amr/inputs.hpp"

namespace amrio::core {

struct CaseConfig {
  std::string name = "case";
  int ncell = 64;                ///< L0 cells per direction
  int max_level = 2;             ///< finest level index (amr.max_level)
  std::int64_t plot_int = 5;
  double cfl = 0.5;
  int nprocs = 4;
  std::int64_t max_step = 40;
  int max_grid_size = 32;
  int blocking_factor = 8;
  mesh::DistributionStrategy distribution = mesh::DistributionStrategy::kSfc;

  /// Full inputs for this case: the Listing-2 baseline with the sweep
  /// parameters overridden and problem defaults chosen so the blast is
  /// resolvable at every campaign scale.
  amr::AmrInputs to_inputs() const;
};

/// Pivot case4 of Figs. 6/7/9/10: paper = 512² L0, 32 tasks, 2 Summit nodes,
/// 20 output events, cfl 0.4.
CaseConfig case4(double scale = 0.5);
/// Pivot case27 of Fig. 8: paper = 1024² L0, 64 ranks, 5 output steps,
/// 4 mesh levels.
CaseConfig case27(double scale = 0.5);
/// The Fig. 11 large case: paper = 8192² L0 on 64 Summit nodes. Runs
/// size-accounted (counting backend); scale applies to the simulated mesh
/// while the reported layout can be further upscaled analytically.
CaseConfig large_case(double scale = 0.25);

/// A Table III-spanning campaign (the paper ran 47 configurations; this
/// matrix covers the same axes with `scale` shrinking n_cell).
std::vector<CaseConfig> table3_campaign(double scale = 0.5);

/// Scale factor from the environment (AMRIO_SCALE), else `fallback`.
double scale_from_env(double fallback);

}  // namespace amrio::core

#pragma once
/// \file study_options.hpp
/// The per-cell execution configuration shared by the proxy study and the
/// campaign layer: every knob that shapes how a calibrated proxy replay is
/// *executed* (engine, codec family, restart path, observability sinks).
/// The campaign cache key canonicalizes every field of this struct — when a
/// knob lands here, `campaign::canonical_key` and its completeness property
/// test must learn about it in the same PR (tests/test_campaign.cpp walks
/// each field and asserts the key moves).

#include <string>

#include "exec/engine.hpp"

namespace amrio::core {

/// Knobs that compose with the calibrated proxy replay — the study-level
/// surface of `--engine`, the `--codec*` family, and `--restart`. The
/// translation itself never depends on these (it prices raw bytes); they
/// shape how the validated proxy is *executed*.
struct StudyOptions {
  /// Execution engine for the proxy replay. Serial is the calibration
  /// default; kEvent unlocks machine-scale nprocs.
  exec::EngineKind engine = exec::EngineKind::kSerial;
  /// Compression model applied to task documents ("identity", "ebl", ...);
  /// forwarded to macsio::Params::codec with the bound/throughput knobs.
  std::string codec = "identity";
  double codec_error_bound = 1.0e-3;
  /// Comma-separated per-variable error bounds for the ebl codec
  /// ("1e-3,1e-5": density loose, pressure tight) — the AMRIC-style sweep
  /// dimension. Non-empty supersedes codec_error_bound; empty = uniform.
  std::string codec_var_bounds;
  double codec_throughput = 0.0;
  double codec_decode_throughput = 0.0;
  /// Read the last dump back after the dump loop (checkpoint-restart) and
  /// record the stats in ValidationResult::restart_stats.
  bool restart = false;
  /// Serve those restart reads through the burst-buffer tier.
  bool restart_from_bb = false;
  /// When non-empty, write a Chrome-trace/Perfetto JSON of the proxy replay's
  /// virtual-time spans (dump/encode/ship, restart/scatter/decode) here —
  /// ranks appear as threads, the driver as tid 0. See docs/OBSERVABILITY.md.
  std::string trace_out;
  /// When non-empty, write the metrics snapshot here (".csv" suffix selects
  /// flat CSV, anything else pretty JSON).
  std::string metrics_out;
  /// When non-empty, write the predictive explain report (per-resource
  /// what-if makespans at 1.5x/2x relief, shadow prices) of the proxy
  /// replay's span DAG here as JSON. The study replays the driver only (no
  /// PFS model), so the codec CPU and aggregation link are the resources
  /// with leverage; rates default to plain 1/factor scaling.
  std::string explain_out;
};

}  // namespace amrio::core

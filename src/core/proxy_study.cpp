#include "core/proxy_study.hpp"

#include <cmath>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/whatif.hpp"
#include "util/assert.hpp"

namespace amrio::core {

ValidationResult calibrate_and_validate(const RunRecord& run, double growth_lo,
                                        double growth_hi) {
  return calibrate_and_validate(run, StudyOptions{}, growth_lo, growth_hi);
}

ValidationResult calibrate_and_validate(const RunRecord& run,
                                        const StudyOptions& opts,
                                        double growth_lo, double growth_hi) {
  ValidationResult result;
  result.translation =
      model::translate(run.inputs, run.measurements(), growth_lo, growth_hi);
  result.sim_per_step = run.total.per_step;

  // Execute the calibrated proxy for real (as the paper does on Summit) and
  // measure what it writes. The engine choice does not affect the bytes —
  // every engine runs the same driver body — so the calibration replay stays
  // valid under any of them; serial is the cheap default and event unlocks
  // machine-scale nprocs.
  macsio::Params params = result.translation.params;
  params.output_dir = "macsio_" + run.config.name;
  params.codec = opts.codec;
  params.codec_error_bound = opts.codec_error_bound;
  params.codec_var_bounds = opts.codec_var_bounds;
  params.codec_throughput = opts.codec_throughput;
  params.codec_decode_throughput = opts.codec_decode_throughput;
  params.restart = opts.restart;
  params.restart_from_bb = opts.restart_from_bb;
  params.validate();
  pfs::MemoryBackend backend(/*store_contents=*/false);
  const auto engine = exec::make_engine(opts.engine, params.nprocs);
  const bool observe = !opts.trace_out.empty() || !opts.metrics_out.empty() ||
                       !opts.explain_out.empty();
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  const obs::Probe probe =
      observe ? obs::Probe{&tracer, &metrics} : obs::Probe{};
  result.proxy_stats =
      macsio::run_macsio(*engine, params, backend, nullptr, probe);
  for (auto b : result.proxy_stats.bytes_per_dump)
    result.proxy_per_step.push_back(static_cast<double>(b));
  if (opts.restart)
    result.restart_stats =
        macsio::run_restart(*engine, params, backend, nullptr, probe);
  if (!opts.trace_out.empty()) obs::export_trace(opts.trace_out, tracer);
  if (!opts.metrics_out.empty())
    obs::export_metrics(opts.metrics_out, metrics.snapshot());
  if (!opts.explain_out.empty()) {
    // Driver-only replay: no SimFs rates to bound the scenarios, so the
    // effective scales fall back to plain 1/factor (see ReliefKnobs).
    obs::export_explain(opts.explain_out,
                        obs::explain(tracer.spans(), tracer.edges(),
                                     obs::UtilizationReport{},
                                     obs::ReliefKnobs{}));
  }

  AMRIO_EXPECTS(result.proxy_per_step.size() == result.sim_per_step.size());
  double acc = 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < result.sim_per_step.size(); ++i) {
    const double rel = std::abs(result.proxy_per_step[i] - result.sim_per_step[i]) /
                       result.sim_per_step[i];
    acc += rel;
    worst = std::max(worst, rel);
  }
  result.mean_abs_rel_err = acc / static_cast<double>(result.sim_per_step.size());
  result.max_abs_rel_err = worst;
  return result;
}

StudySweepResult study_sweep(const macsio::Params& base,
                             const std::vector<StudyOptions>& variants,
                             const campaign::ExecutorOptions& exec_opts) {
  StudySweepResult result;
  result.cells.reserve(variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    campaign::CellConfig cell;
    cell.name = "study/" + std::to_string(i) + "/" +
                exec::engine_kind_name(variants[i].engine) + "/" +
                variants[i].codec;
    cell.params = base;
    cell.study = variants[i];
    result.cells.push_back(std::move(cell));
  }
  campaign::CampaignExecutor executor(exec_opts);
  result.outcomes = executor.run(result.cells);
  result.stats = executor.stats();
  return result;
}

}  // namespace amrio::core

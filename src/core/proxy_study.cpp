#include "core/proxy_study.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace amrio::core {

ValidationResult calibrate_and_validate(const RunRecord& run, double growth_lo,
                                        double growth_hi) {
  ValidationResult result;
  result.translation =
      model::translate(run.inputs, run.measurements(), growth_lo, growth_hi);
  result.sim_per_step = run.total.per_step;

  // Execute the calibrated proxy for real (as the paper does on Summit) and
  // measure what it writes. The fiber-scheduled SerialEngine keeps repeated
  // calibration replays cheap (no thread spawn per evaluation).
  macsio::Params params = result.translation.params;
  params.output_dir = "macsio_" + run.config.name;
  pfs::MemoryBackend backend(/*store_contents=*/false);
  exec::SerialEngine engine(params.nprocs);
  result.proxy_stats = macsio::run_macsio(engine, params, backend);
  for (auto b : result.proxy_stats.bytes_per_dump)
    result.proxy_per_step.push_back(static_cast<double>(b));

  AMRIO_EXPECTS(result.proxy_per_step.size() == result.sim_per_step.size());
  double acc = 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < result.sim_per_step.size(); ++i) {
    const double rel = std::abs(result.proxy_per_step[i] - result.sim_per_step[i]) /
                       result.sim_per_step[i];
    acc += rel;
    worst = std::max(worst, rel);
  }
  result.mean_abs_rel_err = acc / static_cast<double>(result.sim_per_step.size());
  result.max_abs_rel_err = worst;
  return result;
}

}  // namespace amrio::core

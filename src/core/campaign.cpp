#include "core/campaign.hpp"

#include <numeric>

#include "hydro/derive.hpp"
#include "plotfile/scanner.hpp"
#include "plotfile/writer.hpp"
#include "util/assert.hpp"
#include "util/format.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace amrio::core {

model::RunMeasurements RunRecord::measurements() const {
  model::RunMeasurements m;
  AMRIO_EXPECTS_MSG(!total.per_step.empty(),
                    "run produced no output events; cannot build measurements");
  m.first_output_bytes = total.per_step.front();
  m.per_step_bytes = total.per_step;
  const double nsteps = static_cast<double>(std::max<std::size_t>(steps.size(), 1));
  m.mean_step_seconds = wall_seconds / nsteps;
  // Top-level metadata (Header + job_info) of the first plotfile, per task.
  const auto it = table.find({total.steps.front(), -1, -1});
  if (it != table.end() && inputs.nprocs > 0)
    m.metadata_bytes_per_task =
        static_cast<double>(it->second) / inputs.nprocs;
  return m;
}

void write_plot_for(const amr::AmrCore& core, std::int64_t step, double time,
                    pfs::StorageBackend& backend,
                    iostats::TraceRecorder* trace) {
  plotfile::PlotfileSpec spec;
  spec.dir = core.plotfile_name(step);
  spec.var_names = hydro::plot_var_names();
  spec.time = time;
  spec.step = step;
  spec.ref_ratio = core.inputs().ref_ratio;
  spec.job_info = "AMReX-style job_info (amrio mini-Castro)\n" +
                  core.inputs().to_inputs().to_string();

  std::vector<mesh::MultiFab> derived;
  derived.reserve(static_cast<std::size_t>(core.num_levels()));
  std::vector<plotfile::LevelPlotData> levels;
  for (int l = 0; l < core.num_levels(); ++l) {
    derived.push_back(core.derive_level(l));
    levels.push_back(plotfile::LevelPlotData{core.level(l).geom, &derived.back()});
  }
  // Serial-engine write (fiber ranks sized to the widest level distribution);
  // campaigns needing threaded writes can call the exec::Engine overload.
  plotfile::write_plotfile(backend, spec, levels, trace);
}

RunRecord run_case(const CaseConfig& config, const CampaignOptions& opts,
                   pfs::StorageBackend* backend) {
  RunRecord rec;
  rec.config = config;
  rec.inputs = config.to_inputs();

  std::unique_ptr<pfs::MemoryBackend> owned;
  if (backend == nullptr) {
    owned = std::make_unique<pfs::MemoryBackend>(opts.store_contents);
    backend = owned.get();
  }
  iostats::TraceRecorder trace;

  util::WallTimer timer;
  amr::AmrCore core(rec.inputs);
  core.init();
  core.run(
      [&](const amr::AmrCore& c, std::int64_t step, double time) {
        write_plot_for(c, step, time, *backend, &trace);
      },
      [&](const amr::AmrCore& c, std::int64_t step, double time) {
        if (opts.check_int <= 0 || step % opts.check_int != 0 || step == 0)
          return;
        // Checkpoint study extension: conserved state, same N-to-N tree.
        plotfile::PlotfileSpec spec;
        spec.dir = c.inputs().check_file +
                   util::zero_pad(static_cast<std::uint64_t>(step), 5);
        spec.var_names = {"density", "xmom", "ymom", "rho_E"};
        spec.time = time;
        spec.step = step;
        spec.ref_ratio = c.inputs().ref_ratio;
        spec.job_info = "checkpoint\n";
        std::vector<plotfile::LevelPlotData> levels;
        for (int l = 0; l < c.num_levels(); ++l)
          levels.push_back(
              plotfile::LevelPlotData{c.level(l).geom, &c.level(l).state});
        plotfile::write_checkpoint(*backend, spec, levels, nullptr);
      });
  rec.wall_seconds = timer.elapsed();
  rec.steps = core.history();
  rec.nlevels = core.num_levels();

  const auto scan = plotfile::scan_plotfiles(*backend, rec.inputs.plot_file);
  rec.table = scan.table;
  rec.total_bytes = scan.total_bytes;
  rec.nfiles = scan.nfiles;
  rec.total = iostats::cumulative_series(rec.table, rec.inputs.ncells0());
  const auto levels = iostats::levels_present(rec.table);
  for (int l : levels)
    rec.per_level.push_back(
        iostats::cumulative_series_level(rec.table, rec.inputs.ncells0(), l));

  AMRIO_LOG_INFO("case " << config.name << ": " << rec.total.steps.size()
                         << " outputs, " << rec.total_bytes << " bytes, "
                         << rec.wall_seconds << "s");
  return rec;
}

std::vector<RunRecord> run_campaign(std::span<const CaseConfig> cases,
                                    const CampaignOptions& opts) {
  std::vector<RunRecord> out;
  out.reserve(cases.size());
  for (const auto& c : cases) out.push_back(run_case(c, opts));
  return out;
}

}  // namespace amrio::core

#include "core/case_def.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/assert.hpp"

namespace amrio::core {

namespace {
/// Round `v` to the nearest power of two in [lo, hi].
int pow2_clamp(double v, int lo, int hi) {
  int best = lo;
  for (int p = lo; p <= hi; p *= 2) {
    if (std::abs(static_cast<double>(p) - v) <
        std::abs(static_cast<double>(best) - v))
      best = p;
  }
  return best;
}
}  // namespace

amr::AmrInputs CaseConfig::to_inputs() const {
  amr::AmrInputs in = amr::AmrInputs::sedov_baseline();
  in.n_cell = {ncell, ncell};
  in.max_level = max_level;
  in.plot_int = plot_int;
  in.cfl = cfl;
  in.nprocs = nprocs;
  in.max_step = max_step;
  in.max_grid_size = max_grid_size;
  in.blocking_factor = blocking_factor;
  in.distribution = distribution;
  // Let max_step bind (the paper's sweeps fix step counts, and a fixed output
  // count keeps the Eq. (1) series comparable across cases).
  in.stop_time = 1.0e3;
  // A blast radius of 5% of the domain is ≥3 cells at every campaign scale,
  // so the initial deposit (and hence refinement) is resolution-robust.
  in.sedov_r_init = 0.05;
  in.plot_file = name + "_plt";
  in.check_file = name + "_chk";
  in.validate();
  return in;
}

CaseConfig case4(double scale) {
  AMRIO_EXPECTS(scale > 0 && scale <= 1.0);
  CaseConfig c;
  c.name = "case4";
  c.ncell = pow2_clamp(512.0 * scale, 64, 512);
  c.max_level = 3;  // "4 levels" (L0..L3) in the paper's Fig. 9 description
  c.max_step = 200;
  c.plot_int = 10;  // 20 output events after step 0
  c.cfl = 0.4;
  c.nprocs = 32;
  c.max_grid_size = std::max(16, c.ncell / 8);
  return c;
}

CaseConfig case27(double scale) {
  AMRIO_EXPECTS(scale > 0 && scale <= 1.0);
  CaseConfig c;
  c.name = "case27";
  c.ncell = pow2_clamp(1024.0 * scale, 128, 1024);
  c.max_level = 3;  // 4 mesh levels, as in Fig. 8
  c.max_step = 50;
  c.plot_int = 10;  // 5 output steps after plt00000
  c.cfl = 0.5;
  c.nprocs = 64;
  c.max_grid_size = std::max(16, c.ncell / 16);
  return c;
}

CaseConfig large_case(double scale) {
  AMRIO_EXPECTS(scale > 0 && scale <= 1.0);
  CaseConfig c;
  c.name = "large";
  c.ncell = pow2_clamp(8192.0 * scale, 256, 8192);
  c.max_level = 2;
  c.max_step = 40;
  c.plot_int = 1;  // large runs plot frequently over few steps (Fig. 11)
  c.cfl = 0.5;
  c.nprocs = 256;
  c.max_grid_size = std::max(32, c.ncell / 16);
  return c;
}

std::vector<CaseConfig> table3_campaign(double scale) {
  AMRIO_EXPECTS(scale > 0 && scale <= 1.0);
  std::vector<CaseConfig> cases;
  int id = 0;
  // Axes follow Table III; n_cell spans the decades the scale budget allows.
  // The lattice is thinned the way the paper's 47 runs were: one axis varies
  // at a time around the Listing-2 baseline (levels=3, cfl=0.5, plot_int=10,
  // max_step=40).
  const int base_cells[] = {32, 64, 128, 256, 512};
  const int levels[] = {2, 3, 4};
  const double cfls[] = {0.3, 0.4, 0.5, 0.6};
  const std::int64_t plot_ints[] = {1, 5, 10, 20};
  const std::int64_t max_steps[] = {40, 100};

  std::vector<int> seen_cells;
  for (int nc : base_cells) {
    const int cells = std::max(32, pow2_clamp(nc * scale * 2.0, 32, 512));
    // scaling can collapse adjacent sizes onto the same power of two
    if (std::find(seen_cells.begin(), seen_cells.end(), cells) !=
        seen_cells.end())
      continue;
    seen_cells.push_back(cells);
    for (int lev : levels) {
      for (double cfl : cfls) {
        for (std::int64_t pint : plot_ints) {
          for (std::int64_t msteps : max_steps) {
            const int varying = ((lev == 3) ? 0 : 1) + ((cfl == 0.5) ? 0 : 1) +
                                ((pint == 10) ? 0 : 1) +
                                ((msteps == 40) ? 0 : 1);
            if (varying > 1) continue;
            CaseConfig c;
            c.name = "case" + std::to_string(id++);
            c.ncell = cells;
            c.max_level = lev - 1;  // Table III counts levels; max_level is an index
            c.plot_int = pint;
            c.cfl = cfl;
            c.max_step = msteps;
            c.nprocs = std::clamp(cells * cells / 2048, 1, 64);
            c.max_grid_size = std::max(16, cells / 8);
            cases.push_back(c);
          }
        }
      }
    }
  }
  return cases;
}

double scale_from_env(double fallback) {
  if (const char* env = std::getenv("AMRIO_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0 && v <= 1.0) return v;
  }
  return fallback;
}

}  // namespace amrio::core

#pragma once
/// \file campaign.hpp
/// Parameterized run campaign: execute a Castro-Sedov case end-to-end (AMR
/// simulation → N-to-N plotfiles → scan), producing the per-(step, level,
/// task) byte tables and Eq. (1) series the paper's §IV-A derives from its 47
/// Summit runs.

#include <memory>
#include <span>
#include <vector>

#include "amr/core.hpp"
#include "core/case_def.hpp"
#include "iostats/aggregate.hpp"
#include "model/translate.hpp"
#include "pfs/backend.hpp"

namespace amrio::core {

struct RunRecord {
  CaseConfig config;
  amr::AmrInputs inputs;
  iostats::SizeTable table;                        ///< (step, level, rank) bytes
  iostats::CumulativeSeries total;                 ///< Eq. (1) series, all output
  std::vector<iostats::CumulativeSeries> per_level;///< per-AMR-level series
  std::vector<amr::StepRecord> steps;              ///< per-step sim history
  std::uint64_t total_bytes = 0;
  std::uint64_t nfiles = 0;
  int nlevels = 1;
  double wall_seconds = 0.0;

  /// Measurements feeding the Listing-1 translation.
  model::RunMeasurements measurements() const;
};

struct CampaignOptions {
  /// Retain plotfile contents in memory (needed for read-back; campaigns use
  /// counting mode so arbitrarily large sweeps are cheap).
  bool store_contents = false;
  /// Also write checkpoints every check_int steps (0 = disabled).
  std::int64_t check_int = 0;
};

/// Run one case: simulate, write plotfiles into `backend` (a fresh counting
/// MemoryBackend when null), scan, aggregate.
RunRecord run_case(const CaseConfig& config, const CampaignOptions& opts = {},
                   pfs::StorageBackend* backend = nullptr);

/// Run a set of cases sequentially.
std::vector<RunRecord> run_campaign(std::span<const CaseConfig> cases,
                                    const CampaignOptions& opts = {});

/// The plot hook used by run_case, exposed so examples can compose it with a
/// live AmrCore: derives plot variables and writes one plotfile.
void write_plot_for(const amr::AmrCore& core, std::int64_t step, double time,
                    pfs::StorageBackend& backend,
                    iostats::TraceRecorder* trace);

}  // namespace amrio::core

#pragma once
/// \file amrio.hpp
/// Umbrella header: the public API of the amrio library.
///
/// Quick tour (see examples/quickstart.cpp for runnable code):
///   1. amrio::core::CaseConfig / case4() — define a Castro-Sedov run
///   2. amrio::core::run_case()           — simulate + write N-to-N plotfiles
///   3. RunRecord::total / per_level      — the paper's Eq. (1) output series
///   4. amrio::core::calibrate_and_validate() — Listing-1 translation to a
///      MACSio proxy, Eq. (3) part_size fit, dataset_growth calibration, and
///      a proxy-vs-simulation error report.

#include "amr/core.hpp"            // IWYU pragma: export
#include "amr/inputs.hpp"          // IWYU pragma: export
#include "core/campaign.hpp"       // IWYU pragma: export
#include "exec/engine.hpp"         // IWYU pragma: export
#include "core/case_def.hpp"       // IWYU pragma: export
#include "core/proxy_study.hpp"    // IWYU pragma: export
#include "iostats/aggregate.hpp"   // IWYU pragma: export
#include "macsio/driver.hpp"       // IWYU pragma: export
#include "macsio/params.hpp"       // IWYU pragma: export
#include "model/calibrate.hpp"     // IWYU pragma: export
#include "model/partsize.hpp"      // IWYU pragma: export
#include "model/regression.hpp"    // IWYU pragma: export
#include "model/translate.hpp"     // IWYU pragma: export
#include "pfs/backend.hpp"         // IWYU pragma: export
#include "pfs/simfs.hpp"           // IWYU pragma: export
#include "plotfile/reader.hpp"     // IWYU pragma: export
#include "plotfile/scanner.hpp"    // IWYU pragma: export
#include "plotfile/writer.hpp"     // IWYU pragma: export

#pragma once
/// \file proxy_study.hpp
/// End-to-end proxy study: translate one AMR run into a MACSio invocation
/// (Listing 1 + Eq. 3 + growth calibration), execute the proxy, and quantify
/// how well it reproduces the simulation's output workload — the comparison
/// behind the paper's Figs. 9–11.

#include "campaign/executor.hpp"
#include "core/campaign.hpp"
#include "core/study_options.hpp"
#include "exec/engine.hpp"
#include "macsio/driver.hpp"
#include "model/translate.hpp"

namespace amrio::core {

struct ValidationResult {
  model::TranslationResult translation;
  std::vector<double> sim_per_step;    ///< AMR bytes per output event
  std::vector<double> proxy_per_step;  ///< MACSio bytes per dump
  double mean_abs_rel_err = 0.0;
  double max_abs_rel_err = 0.0;
  macsio::DumpStats proxy_stats;
  /// Populated iff StudyOptions::restart was set.
  macsio::RestartStats restart_stats;
};

/// Calibrate a proxy for `run` and validate it by actually executing the
/// MACSio driver (counting backend) and comparing per-step series. The
/// default growth bracket is generous: small meshes grow faster per output
/// event than the paper's 512²+ cases (see EXPERIMENTS.md), and the
/// golden-section search just converges from above when the optimum is low.
ValidationResult calibrate_and_validate(const RunRecord& run,
                                        double growth_lo = 1.0,
                                        double growth_hi = 1.15);

/// Same, with the engine/codec/restart knobs applied to the proxy execution.
/// Codec and restart leave the byte-accuracy comparison untouched by
/// construction (bytes_per_dump stays raw; restart happens after the dump
/// loop) — they add their own stats to the result instead.
ValidationResult calibrate_and_validate(const RunRecord& run,
                                        const StudyOptions& opts,
                                        double growth_lo = 1.0,
                                        double growth_hi = 1.15);

/// A sharded sweep over study-option variants of one proxy configuration:
/// each variant becomes a campaign cell {base params, variant}, executed
/// through campaign::CampaignExecutor (work-stealing pool, result cache,
/// optional JSON cache persistence — the --jobs/--cache surface). Outcomes
/// align 1:1 with `variants`.
struct StudySweepResult {
  std::vector<campaign::CellConfig> cells;
  std::vector<campaign::CellOutcome> outcomes;
  campaign::ExecutorStats stats;
};
StudySweepResult study_sweep(const macsio::Params& base,
                             const std::vector<StudyOptions>& variants,
                             const campaign::ExecutorOptions& exec_opts = {});

}  // namespace amrio::core

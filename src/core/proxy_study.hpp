#pragma once
/// \file proxy_study.hpp
/// End-to-end proxy study: translate one AMR run into a MACSio invocation
/// (Listing 1 + Eq. 3 + growth calibration), execute the proxy, and quantify
/// how well it reproduces the simulation's output workload — the comparison
/// behind the paper's Figs. 9–11.

#include "core/campaign.hpp"
#include "macsio/driver.hpp"
#include "model/translate.hpp"

namespace amrio::core {

struct ValidationResult {
  model::TranslationResult translation;
  std::vector<double> sim_per_step;    ///< AMR bytes per output event
  std::vector<double> proxy_per_step;  ///< MACSio bytes per dump
  double mean_abs_rel_err = 0.0;
  double max_abs_rel_err = 0.0;
  macsio::DumpStats proxy_stats;
};

/// Calibrate a proxy for `run` and validate it by actually executing the
/// MACSio driver (counting backend) and comparing per-step series. The
/// default growth bracket is generous: small meshes grow faster per output
/// event than the paper's 512²+ cases (see EXPERIMENTS.md), and the
/// golden-section search just converges from above when the optimum is low.
ValidationResult calibrate_and_validate(const RunRecord& run,
                                        double growth_lo = 1.0,
                                        double growth_hi = 1.15);

}  // namespace amrio::core

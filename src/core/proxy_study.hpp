#pragma once
/// \file proxy_study.hpp
/// End-to-end proxy study: translate one AMR run into a MACSio invocation
/// (Listing 1 + Eq. 3 + growth calibration), execute the proxy, and quantify
/// how well it reproduces the simulation's output workload — the comparison
/// behind the paper's Figs. 9–11.

#include "core/campaign.hpp"
#include "exec/engine.hpp"
#include "macsio/driver.hpp"
#include "model/translate.hpp"

namespace amrio::core {

/// Knobs that compose with the calibrated proxy replay — the study-level
/// surface of `--engine`, the `--codec*` family, and `--restart`. The
/// translation itself never depends on these (it prices raw bytes); they
/// shape how the validated proxy is *executed*.
struct StudyOptions {
  /// Execution engine for the proxy replay. Serial is the calibration
  /// default; kEvent unlocks machine-scale nprocs.
  exec::EngineKind engine = exec::EngineKind::kSerial;
  /// Compression model applied to task documents ("identity", "ebl", ...);
  /// forwarded to macsio::Params::codec with the bound/throughput knobs.
  std::string codec = "identity";
  double codec_error_bound = 1.0e-3;
  double codec_throughput = 0.0;
  double codec_decode_throughput = 0.0;
  /// Read the last dump back after the dump loop (checkpoint-restart) and
  /// record the stats in ValidationResult::restart_stats.
  bool restart = false;
  /// Serve those restart reads through the burst-buffer tier.
  bool restart_from_bb = false;
  /// When non-empty, write a Chrome-trace/Perfetto JSON of the proxy replay's
  /// virtual-time spans (dump/encode/ship, restart/scatter/decode) here —
  /// ranks appear as threads, the driver as tid 0. See docs/OBSERVABILITY.md.
  std::string trace_out;
  /// When non-empty, write the metrics snapshot here (".csv" suffix selects
  /// flat CSV, anything else pretty JSON).
  std::string metrics_out;
  /// When non-empty, write the predictive explain report (per-resource
  /// what-if makespans at 1.5x/2x relief, shadow prices) of the proxy
  /// replay's span DAG here as JSON. The study replays the driver only (no
  /// PFS model), so the codec CPU and aggregation link are the resources
  /// with leverage; rates default to plain 1/factor scaling.
  std::string explain_out;
};

struct ValidationResult {
  model::TranslationResult translation;
  std::vector<double> sim_per_step;    ///< AMR bytes per output event
  std::vector<double> proxy_per_step;  ///< MACSio bytes per dump
  double mean_abs_rel_err = 0.0;
  double max_abs_rel_err = 0.0;
  macsio::DumpStats proxy_stats;
  /// Populated iff StudyOptions::restart was set.
  macsio::RestartStats restart_stats;
};

/// Calibrate a proxy for `run` and validate it by actually executing the
/// MACSio driver (counting backend) and comparing per-step series. The
/// default growth bracket is generous: small meshes grow faster per output
/// event than the paper's 512²+ cases (see EXPERIMENTS.md), and the
/// golden-section search just converges from above when the optimum is low.
ValidationResult calibrate_and_validate(const RunRecord& run,
                                        double growth_lo = 1.0,
                                        double growth_hi = 1.15);

/// Same, with the engine/codec/restart knobs applied to the proxy execution.
/// Codec and restart leave the byte-accuracy comparison untouched by
/// construction (bytes_per_dump stays raw; restart happens after the dump
/// loop) — they add their own stats to the result instead.
ValidationResult calibrate_and_validate(const RunRecord& run,
                                        const StudyOptions& opts,
                                        double growth_lo = 1.0,
                                        double growth_hi = 1.15);

}  // namespace amrio::core

#pragma once
/// \file part.hpp
/// Synthetic mesh parts. MACSio marshals rectilinear "parts" whose nominal
/// byte size is the `--part_size` request; an actual part is the smallest
/// square-ish nx × ny grid whose payload is at least that size — the "valid
/// mesh topology" constraint the paper's calibration corrects for.

#include <cstdint>

namespace amrio::macsio {

struct PartSpec {
  int nx = 1;
  int ny = 1;
  int nvars = 1;

  std::uint64_t values_per_var() const {
    return static_cast<std::uint64_t>(nx) * static_cast<std::uint64_t>(ny);
  }
  std::uint64_t total_values() const {
    return values_per_var() * static_cast<std::uint64_t>(nvars);
  }
  /// Raw payload bytes (doubles only, no format envelope).
  std::uint64_t raw_bytes() const { return total_values() * 8; }
};

/// Smallest square-ish spec with raw_bytes() >= target_bytes.
PartSpec make_part_spec(std::uint64_t target_bytes, int nvars);

}  // namespace amrio::macsio

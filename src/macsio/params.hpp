#pragma once
/// \file params.hpp
/// MACSio-compatible proxy configuration: the command-line argument set of the
/// paper's Table II with the same names and semantics, so the model of
/// Listing 1 translates AMReX inputs into an argv for this executable.

#include <cstdint>
#include <string>
#include <vector>

#include "codec/codec.hpp"

namespace amrio::macsio {

enum class Interface { kMiftmpl, kH5Lite, kRaw };
enum class FileMode { kMif, kSif };
/// kSized writes constant (zero) values through the same fixed-width encoder
/// — byte-identical output to kReal at a fraction of the formatting cost;
/// kReal fills parts with seeded pseudo-random data.
enum class FillMode { kSized, kReal };

const char* to_string(Interface i);
const char* to_string(FileMode m);
Interface interface_from_string(const std::string& s);

struct Params {
  Interface interface = Interface::kMiftmpl;  ///< --interface (Table II)
  FileMode file_mode = FileMode::kMif;        ///< --parallel_file_mode
  int mif_files = 0;        ///< file count for MIF; 0 = one per task (N-to-N)
  int num_dumps = 10;       ///< --num_dumps
  std::uint64_t part_size = 80000;  ///< --part_size (bytes; suffixes K/M/G ok)
  double avg_num_parts = 1.0;       ///< --avg_num_parts
  int vars_per_part = 1;            ///< --vars_per_part
  double compute_time = 0.0;        ///< --compute_time (sec between dumps)
  std::uint64_t meta_size = 0;      ///< --meta_size (extra bytes per task)
  double dataset_growth = 1.0;      ///< --dataset_growth (per-dump multiplier)

  // staging subsystem (two-phase aggregation + burst-buffer tier)
  /// --aggregators: partition ranks into this many contiguous groups;
  /// non-aggregator ranks ship their task documents to their group's
  /// aggregator, which writes one subfile per group per dump (plus one index
  /// per dump from rank 0). 0 = no aggregation (classic MIF/SIF). Ranks that
  /// do not divide evenly are round-robined over the leading groups,
  /// deterministically. Requires MIF.
  int aggregators = 0;
  /// --agg_link_bw: modeled interconnect bandwidth (bytes/sec) for shipping
  /// task documents to aggregators; the cost lands on the logical clock of
  /// the subfile's I/O request.
  double agg_link_bandwidth = 12.5e9;
  /// --staging bb: tag every emitted pfs::IoRequest for the burst-buffer
  /// tier so SimFs replays absorb at BB bandwidth and drain asynchronously.
  bool stage_to_bb = false;

  // codec subsystem (in-situ compression stage)
  /// --codec: compression model applied to every task document before it
  /// leaves the writer — "identity" (off), "lossless", or "ebl"
  /// (error-bounded lossy). Encoded bytes travel the aggregation link and
  /// land on the tier (pfs::IoRequest sizes shrink, encode cpu lands on the
  /// request timeline before submit); raw bytes stay conserved in the
  /// accounting (task_bytes, bytes_per_dump) and in backend file contents.
  std::string codec = "identity";
  /// --codec_error_bound: relative error bound in (0, 1) for --codec ebl.
  double codec_error_bound = 1.0e-3;
  /// --codec_var_bounds: comma-separated per-variable error bounds for
  /// --codec ebl ("1e-3,1e-5" = density loose, pressure tight). Non-empty
  /// supersedes --codec_error_bound; empty = uniform bound.
  std::string codec_var_bounds;
  /// --codec_throughput: modeled encode throughput (bytes/sec); 0 = the
  /// codec's default.
  double codec_throughput = 0.0;
  /// --codec_decode_throughput: modeled decode throughput (bytes/sec) for
  /// the restart read path; 0 = the codec's default (decoders typically
  /// outrun their encoders).
  double codec_decode_throughput = 0.0;

  // restart subsystem (read-side staging: the dump pipeline in reverse)
  /// --restart: after the dump loop, read the last dump back — every rank
  /// recovers its task document byte-identically (aggregators fan subfile
  /// bytes back out to their group; under a codec the fetched bytes are
  /// encoded and each rank pays the modeled decode cpu before "resuming").
  bool restart = false;
  /// --read_staging bb: serve restart reads through the burst-buffer tier —
  /// extents are prefetched OST→node (`pfs::kOpPrefetch`) and then read
  /// node-locally; `none` (default) = cold direct PFS reads.
  bool restart_from_bb = false;
  /// --prefetch: per-node OST→node prefetch stream bound used when timing
  /// `--read_staging bb` restarts (0 = the tier's drain_concurrency).
  int prefetch_streams = 0;

  /// The codec::CodecSpec equivalent of the codec knobs above.
  codec::CodecSpec codec_spec() const;

  // run context (what jsrun provided in the paper's Listing 1)
  int nprocs = 1;
  std::string output_dir = "macsio_out";
  FillMode fill = FillMode::kSized;
  std::uint64_t seed = 7;

  /// Parse a MACSio-style argv (without the program name). Accepted forms:
  ///   --interface miftmpl|hdf5|h5lite|raw
  ///   --parallel_file_mode MIF <n> | SIF 1
  ///   --num_dumps N --part_size 1.5M --avg_num_parts 2.5 --vars_per_part 4
  ///   --compute_time 0.5 --meta_size 4K --dataset_growth 1.013
  ///   --aggregators 8 --agg_link_bw 1.25e10 --staging none|bb
  ///   --codec identity|lossless|ebl --codec_error_bound 1e-3
  ///   --codec_var_bounds 1e-3,1e-5
  ///   --codec_throughput 3e9 --codec_decode_throughput 6e9
  ///   --restart --read_staging none|bb --prefetch 4
  ///   --nprocs N --output_dir path --fill real|sized --seed S
  /// Throws std::invalid_argument on unknown/malformed arguments.
  static Params from_cli(const std::vector<std::string>& args);

  /// Serialize back into the Listing-1 argv form (round-trips from_cli).
  std::vector<std::string> to_cli() const;
  /// One-line rendering of to_cli() for reports.
  std::string to_command_line() const;

  void validate() const;

  /// Nominal raw bytes of one part at dump k: part_size × growth^k.
  std::uint64_t part_bytes_at_dump(int dump) const;
  /// Parts owned by `rank`: total round(avg_num_parts × nprocs) parts,
  /// distributed as evenly as possible (first tasks get the extras).
  int parts_of_rank(int rank) const;
};

}  // namespace amrio::macsio

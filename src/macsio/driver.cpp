#include "macsio/driver.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <sstream>

#include "codec/codec.hpp"
#include "macsio/interfaces.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "staging/aggregator.hpp"
#include "util/assert.hpp"
#include "util/format.hpp"
#include "util/json.hpp"

namespace amrio::macsio {

std::vector<double> DumpStats::cumulative() const {
  std::vector<double> out;
  out.reserve(bytes_per_dump.size());
  double acc = 0.0;
  for (auto b : bytes_per_dump) {
    acc += static_cast<double>(b);
    out.push_back(acc);
  }
  return out;
}

namespace {

/// MIF file group of a rank: mif_files files shared contiguously.
int file_group(const Params& p, int rank) {
  const int nfiles = (p.mif_files == 0) ? p.nprocs : p.mif_files;
  return static_cast<int>((static_cast<std::int64_t>(rank) * nfiles) / p.nprocs);
}

/// First rank of a file group (the member that creates/truncates the file).
bool is_group_leader(const Params& p, int rank) {
  if (rank == 0) return true;
  return file_group(p, rank) != file_group(p, rank - 1);
}

/// dump_file_path against an already-constructed interface — the dump body
/// calls this several times per rank per dump; allocating a fresh interface
/// each time (as the public overload must) would dominate calibration
/// replays.
std::string dump_file_path_for(const Params& p, const IoInterface& iface,
                               int rank, int dump) {
  if (p.file_mode == FileMode::kSif) {
    return p.output_dir + "/data/macsio_" + iface.file_tag() + "_shared_" +
           util::zero_pad(static_cast<std::uint64_t>(dump), 3) + "." +
           iface.extension();
  }
  const int group = file_group(p, rank);
  return p.output_dir + "/data/macsio_" + iface.file_tag() + "_" +
         util::zero_pad(static_cast<std::uint64_t>(group), 5) + "_" +
         util::zero_pad(static_cast<std::uint64_t>(dump), 3) + "." +
         iface.extension();
}

std::string aggregated_file_path_for(const Params& p, const IoInterface& iface,
                                     int group, int dump) {
  return p.output_dir + "/data/macsio_" + iface.file_tag() + "_agg_" +
         util::zero_pad(static_cast<std::uint64_t>(group), 5) + "_" +
         util::zero_pad(static_cast<std::uint64_t>(dump), 3) + "." +
         iface.extension();
}

std::string aggregated_index_path_for(const Params& p, const IoInterface& iface,
                                      int dump) {
  return p.output_dir + "/metadata/macsio_" + iface.file_tag() + "_index_" +
         util::zero_pad(static_cast<std::uint64_t>(dump), 3) + ".txt";
}

// Fixed-width index layout: 55-byte header + one 58-byte line per task
// ("ggggggg ttttttt <offset:20> <bytes:20>\n") — exactly computable, see
// aggregated_index_bytes(). Group/task fields are 7 digits so the index
// stays fixed-width at machine-scale rank counts (nprocs <= 9,999,999).
std::string agg_index_text(const Params& p, const staging::AggTopology& topo,
                           int dump,
                           const std::vector<std::uint64_t>& task_bytes) {
  std::string out = "macsio-agg-index dump " +
                    util::zero_pad(static_cast<std::uint64_t>(dump), 3) +
                    " groups " +
                    util::zero_pad(static_cast<std::uint64_t>(topo.ngroups()), 7) +
                    " ranks " +
                    util::zero_pad(static_cast<std::uint64_t>(p.nprocs), 7) +
                    "\n";
  out.reserve(out.size() + 58 * static_cast<std::size_t>(p.nprocs));
  for (int g = 0; g < topo.ngroups(); ++g) {
    std::uint64_t offset = 0;
    for (int r : topo.members_of(g)) {
      const std::uint64_t b = task_bytes[static_cast<std::size_t>(r)];
      out += util::zero_pad(static_cast<std::uint64_t>(g), 7) + " " +
             util::zero_pad(static_cast<std::uint64_t>(r), 7) + " " +
             util::zero_pad(offset, 20) + " " + util::zero_pad(b, 20) + "\n";
      offset += b;
    }
  }
  return out;
}

}  // namespace

std::string root_meta_text(const Params& p, int dump, const PartSpec& spec,
                           std::uint64_t dump_bytes) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("tool").value("macsio-amrio");
  w.key("interface").value(to_string(p.interface));
  w.key("parallel_file_mode").value(to_string(p.file_mode));
  w.key("dump").value(static_cast<std::int64_t>(dump));
  w.key("num_dumps").value(static_cast<std::int64_t>(p.num_dumps));
  w.key("nprocs").value(static_cast<std::int64_t>(p.nprocs));
  w.key("part_nx").value(static_cast<std::int64_t>(spec.nx));
  w.key("part_ny").value(static_cast<std::int64_t>(spec.ny));
  w.key("vars_per_part").value(static_cast<std::int64_t>(spec.nvars));
  w.key("part_size_request").value(p.part_bytes_at_dump(dump));
  w.key("dataset_growth").value(p.dataset_growth);
  w.key("dump_bytes").value(dump_bytes);
  w.end_object();
  os << '\n';
  return os.str();
}

std::string dump_file_path(const Params& p, int rank, int dump) {
  if (p.aggregators > 0) {
    const auto topo = staging::AggTopology::make(p.nprocs, p.aggregators);
    return aggregated_file_path(p, topo.group_of(rank), dump);
  }
  return dump_file_path_for(p, *make_interface(p.interface), rank, dump);
}

std::string root_file_path(const Params& p, int dump) {
  const auto iface = make_interface(p.interface);
  return p.output_dir + "/metadata/macsio_" + iface->file_tag() + "_root_" +
         util::zero_pad(static_cast<std::uint64_t>(dump), 3) + ".json";
}

std::string aggregated_file_path(const Params& p, int group, int dump) {
  return aggregated_file_path_for(p, *make_interface(p.interface), group, dump);
}

std::string aggregated_index_path(const Params& p, int dump) {
  return aggregated_index_path_for(p, *make_interface(p.interface), dump);
}

std::uint64_t aggregated_index_bytes(const Params& p) {
  // header "macsio-agg-index dump DDD groups GGGGGGG ranks RRRRRRR\n" = 55
  // bytes; per-task line "GGGGGGG TTTTTTT <offset:20> <bytes:20>\n" = 58.
  return 55 + 58 * static_cast<std::uint64_t>(p.nprocs);
}

namespace {

/// The single SPMD dump-loop body shared by every execution mode. Rank 0
/// accumulates the full statistics and returns them; other ranks return
/// empty stats.
DumpStats run_macsio_rank(exec::RankCtx& ctx, const Params& params,
                          pfs::StorageBackend& backend,
                          iostats::TraceRecorder* trace, obs::Probe probe) {
  params.validate();
  AMRIO_EXPECTS_MSG(ctx.nranks() == params.nprocs,
                    "run_macsio: engine ranks " << ctx.nranks()
                                                << " != nprocs " << params.nprocs);
  const auto iface = make_interface(params.interface);
  const int rank = ctx.rank();
  constexpr int kBatonTag = 41;
  constexpr int kShipTag = 73;

  const bool aggregated = params.aggregators > 0;
  std::optional<staging::AggTopology> topo;
  if (aggregated)
    topo = staging::AggTopology::make(params.nprocs, params.aggregators);
  const staging::AggregationConfig agg_cfg{params.aggregators,
                                           params.agg_link_bandwidth, 1.0e-6};
  const int tier =
      params.stage_to_bb ? pfs::kTierBurstBuffer : pfs::kTierPfs;
  // The in-situ codec stage: every rank encodes its task document before it
  // leaves the node. Codecs are stateless; each rank holds its own instance.
  const auto cdc = codec::make_codec(params.codec_spec());
  const bool encoded = params.codec_spec().enabled();

  DumpStats stats;
  if (rank == 0) {
    stats.task_bytes.assign(static_cast<std::size_t>(params.num_dumps),
                            std::vector<std::uint64_t>(
                                static_cast<std::size_t>(params.nprocs), 0));
  }

  for (int dump = 0; dump < params.num_dumps; ++dump) {
    const PartSpec spec =
        make_part_spec(params.part_bytes_at_dump(dump), params.vars_per_part);
    const double submit_time = dump * params.compute_time;
    util::Xoshiro256 rng(params.seed ^
                         (static_cast<std::uint64_t>(dump) << 20) ^
                         static_cast<std::uint64_t>(rank));
    // `written` is this rank's task-document bytes, gathered below either way.
    std::uint64_t written = 0;

    auto serialize_task_doc = [&](Sink& sink) {
      iface->begin_task_doc(sink, rank, dump);
      const int nparts = params.parts_of_rank(rank);
      for (int part = 0; part < nparts; ++part) {
        if (part > 0) iface->part_separator(sink);
        iface->write_part(sink, spec, part, params.fill, rng);
      }
      iface->end_task_doc(sink, params.meta_size);
    };

    if (aggregated) {
      // Two-phase aggregation: serialize into memory, encode through the
      // codec stage, ship to the group's aggregator, and let only the
      // aggregator touch the file system — the encoded documents cross the
      // link, the aggregator decodes them, and the subfile holds the group's
      // task documents concatenated in rank order, byte-identical to what
      // the members would have written themselves.
      const int group = topo->group_of(rank);
      const int agg = topo->aggregator_of_group(group);
      std::vector<std::byte> doc;
      VectorSink vsink(doc);
      serialize_task_doc(vsink);
      written = doc.size();
      std::vector<std::byte> blob;
      if (encoded) blob = cdc->encode(doc);
      const auto payloads = exec::gatherv_group(ctx, encoded ? blob : doc,
                                                topo->members_of(group), agg,
                                                kShipTag, probe);
      if (rank == agg) {
        const std::string path =
            aggregated_file_path_for(params, *iface, group, dump);
        std::uint64_t encoded_bytes = 0;
        double codec_cpu = 0.0;
        pfs::OutFile out(backend, path);
        for (const auto& payload : payloads) {
          if (encoded) {
            const codec::CompressResult enc = cdc->peek(payload);
            encoded_bytes += enc.out_bytes;
            codec_cpu += enc.cpu_seconds;
            out.write(cdc->decode(payload));
          } else {
            out.write(payload);
          }
        }
        const std::uint64_t subfile_bytes = out.bytes_written();
        out.close();  // surface flush errors (destructor closes quietly)
        if (trace != nullptr)
          trace->record_encoded_write(dump, 0, rank, path, subfile_bytes,
                                      encoded_bytes, codec_cpu, tier, group);
      }
    } else {
      const std::string path = dump_file_path_for(params, *iface, rank, dump);

      // MIF baton: within a file group, members write strictly in rank order.
      // SIF is one global group. The leader truncates; followers append after
      // receiving the baton from their predecessor.
      const bool leader = (params.file_mode == FileMode::kSif)
                              ? (rank == 0)
                              : is_group_leader(params, rank);
      const bool has_predecessor = !leader;
      const bool same_file_successor =
          (rank + 1 < params.nprocs) &&
          dump_file_path_for(params, *iface, rank + 1, dump) == path;

      if (has_predecessor) {
        (void)ctx.recv_token(rank - 1, kBatonTag);
      }
      {
        pfs::OutFile out(backend, path,
                         leader ? pfs::OpenMode::kTruncate
                                : pfs::OpenMode::kAppend);
        FileSink sink(out);
        serialize_task_doc(sink);
        written = out.bytes_written();
        out.close();  // surface flush errors (destructor closes quietly)
      }
      if (same_file_successor) {
        ctx.send_token(written, rank + 1, kBatonTag);
      }
      if (trace != nullptr) {
        const codec::CompressResult enc =
            encoded ? cdc->plan(written) : codec::CompressResult{};
        trace->record_encoded_write(dump, 0, rank, path, written,
                                    enc.out_bytes, enc.cpu_seconds, tier, -1);
      }
    }

    // Gather per-rank byte counts so rank 0 can write the root metadata and
    // accumulate statistics — this is MACSio's end-of-dump collective.
    const auto all_bytes = ctx.gather(written, 0);
    ctx.barrier();

    if (rank == 0) {
      const std::size_t req_begin = stats.requests.size();
      std::uint64_t dump_bytes = 0;
      // Per-task codec results, re-derived deterministically from the raw
      // byte counts (plan is a pure function of size) — one chunk per doc.
      std::vector<codec::CompressResult> encs(
          static_cast<std::size_t>(params.nprocs));
      for (int r = 0; r < params.nprocs; ++r) {
        const std::uint64_t b = all_bytes[static_cast<std::size_t>(r)];
        stats.task_bytes[static_cast<std::size_t>(dump)][static_cast<std::size_t>(r)] = b;
        dump_bytes += b;
        encs[static_cast<std::size_t>(r)] = cdc->plan(b);
        stats.codec.add(dump, -1, encs[static_cast<std::size_t>(r)]);
        if (!aggregated) {
          // Encoded bytes hit the filesystem; the encode cpu delays submit.
          const auto& enc = encs[static_cast<std::size_t>(r)];
          stats.requests.push_back(pfs::IoRequest{
              r, submit_time + enc.cpu_seconds,
              dump_file_path_for(params, *iface, r, dump), enc.out_bytes,
              tier});
        }
      }
      if (aggregated) {
        // One request per subfile, submitted once every member has encoded
        // its document (concurrently — the slowest encode gates the group)
        // and the encoded bytes have crossed the interconnect.
        for (int g = 0; g < topo->ngroups(); ++g) {
          const int agg = topo->aggregator_of_group(g);
          std::uint64_t subfile_encoded = 0;
          std::uint64_t shipped = 0;
          int nmessages = 0;
          double encode_gate = 0.0;
          for (int r : topo->members_of(g)) {
            const auto& enc = encs[static_cast<std::size_t>(r)];
            subfile_encoded += enc.out_bytes;
            encode_gate = std::max(encode_gate, enc.cpu_seconds);
            if (r != agg) {
              shipped += enc.out_bytes;
              ++nmessages;
            }
          }
          const double ready = submit_time + encode_gate +
                               staging::ship_cost(agg_cfg, shipped, nmessages);
          stats.requests.push_back(pfs::IoRequest{
              agg, ready, aggregated_file_path_for(params, *iface, g, dump),
              subfile_encoded, tier});
        }
      }
      // The root document reports the dump's task-data total, aggregated or
      // not — the index (written below) is bookkeeping on top of it.
      const std::string root_path = root_file_path(params, dump);
      const std::string root = root_meta_text(params, dump, spec, dump_bytes);
      {
        pfs::OutFile root_out(backend, root_path);
        root_out.write(root);
        root_out.close();
      }
      if (aggregated) {
        // Rank 0 writes the per-dump index locating every task document.
        const std::string index_path =
            aggregated_index_path_for(params, *iface, dump);
        const std::string index = agg_index_text(params, *topo, dump, all_bytes);
        AMRIO_ENSURES(index.size() == aggregated_index_bytes(params));
        {
          pfs::OutFile index_out(backend, index_path);
          index_out.write(index);
          index_out.close();
        }
        dump_bytes += index.size();
        if (trace != nullptr)
          trace->record_staged_write(dump, -1, 0, index_path, index.size(),
                                     tier, -1);
        stats.requests.push_back(
            pfs::IoRequest{0, submit_time, index_path, index.size(), tier});
      }
      dump_bytes += root.size();
      if (trace != nullptr)
        trace->record_staged_write(dump, -1, 0, root_path, root.size(), tier,
                                   -1);
      stats.requests.push_back(
          pfs::IoRequest{0, submit_time, root_path, root.size(), tier});
      stats.bytes_per_dump.push_back(dump_bytes);
      stats.total_bytes += dump_bytes;

      if (probe.metrics) {
        probe.metrics->add("macsio.dumps", 1);
        probe.metrics->add("macsio.dump_bytes",
                           static_cast<std::int64_t>(dump_bytes));
      }
      if (probe.tracer) {
        // Span emission happens here, on rank 0, from the same pure plan()
        // results the requests were built from — per-rank program order is
        // engine-invariant, so the merged stream is byte-identical across
        // serial/spmd/event engines.
        const std::string label = "dump " + std::to_string(dump);
        double phase_end = submit_time;
        for (std::size_t i = req_begin; i < stats.requests.size(); ++i)
          phase_end = std::max(phase_end, stats.requests[i].submit_time);
        const std::uint64_t phase = probe.tracer->record(
            obs::Span{0, 0, -1, "dump", label, submit_time, phase_end});
        std::vector<std::uint64_t> encode_span(
            static_cast<std::size_t>(params.nprocs), 0);
        for (int r = 0; r < params.nprocs; ++r) {
          const double cpu = encs[static_cast<std::size_t>(r)].cpu_seconds;
          if (cpu <= 0.0) continue;
          obs::Span es;
          es.parent = phase;
          es.rank = r;
          es.stage = "encode";
          es.detail = label;
          es.start = submit_time;
          es.end = submit_time + cpu;
          es.service = cpu;
          es.res = "codec_cpu";
          encode_span[static_cast<std::size_t>(r)] =
              probe.tracer->record(std::move(es));
        }
        if (aggregated) {
          for (int g = 0; g < topo->ngroups(); ++g) {
            const int agg = topo->aggregator_of_group(g);
            double encode_gate = 0.0;
            std::uint64_t shipped = 0;
            int nmessages = 0;
            for (int r : topo->members_of(g)) {
              encode_gate = std::max(
                  encode_gate, encs[static_cast<std::size_t>(r)].cpu_seconds);
              if (r != agg) {
                shipped += encs[static_cast<std::size_t>(r)].out_bytes;
                ++nmessages;
              }
            }
            const double ship_start = submit_time + encode_gate;
            const double ready =
                ship_start + staging::ship_cost(agg_cfg, shipped, nmessages);
            if (ready <= ship_start) continue;
            obs::Span ss;
            ss.parent = phase;
            ss.rank = agg;
            ss.stage = "ship";
            ss.detail = label;
            ss.start = ship_start;
            ss.end = ready;
            ss.resource = "agg_link";
            // The bandwidth part only: the per-message latency term does not
            // shrink when the link gets faster, so the what-if engine must
            // not scale it.
            ss.service =
                static_cast<double>(shipped) / agg_cfg.link_bandwidth;
            ss.res = "agg_link";
            const std::uint64_t ship = probe.tracer->record(std::move(ss));
            for (int r : topo->members_of(g)) {
              const std::uint64_t from =
                  encode_span[static_cast<std::size_t>(r)];
              if (from != 0) probe.tracer->edge(from, ship);
            }
          }
        }
      }
      if (probe.ledger) {
        // Pool view of the same plan() results: the codec CPU pool (one lane
        // per rank) holds lanes for their encode seconds, the agg link pool
        // (one link per group) for the ship window.
        obs::ResourceLedger& lg = *probe.ledger;
        lg.declare("codec_cpu", params.nprocs);
        double cpu_total = 0.0;
        for (int r = 0; r < params.nprocs; ++r)
          cpu_total += encs[static_cast<std::size_t>(r)].cpu_seconds;
        lg.add_busy("codec_cpu", cpu_total);
        if (aggregated) {
          lg.declare("agg_link", topo->ngroups());
          for (int g = 0; g < topo->ngroups(); ++g) {
            const int agg = topo->aggregator_of_group(g);
            double encode_gate = 0.0;
            std::uint64_t shipped = 0;
            int nmessages = 0;
            for (int r : topo->members_of(g)) {
              encode_gate = std::max(
                  encode_gate, encs[static_cast<std::size_t>(r)].cpu_seconds);
              if (r != agg) {
                shipped += encs[static_cast<std::size_t>(r)].out_bytes;
                ++nmessages;
              }
            }
            const double cost = staging::ship_cost(agg_cfg, shipped, nmessages);
            lg.add_busy("agg_link", cost);
            lg.extend_makespan(submit_time + encode_gate + cost);
          }
        }
      }
    }
    ctx.barrier();
  }

  if (rank == 0) {
    // files: count distinct paths actually produced
    std::set<std::string> files;
    for (const auto& req : stats.requests) files.insert(req.file);
    stats.nfiles = files.size();
  }
  return stats;
}

/// The single SPMD restart body: the dump loop in reverse for the last
/// written dump. Rank 0 returns the full statistics; other ranks return
/// empty stats.
RestartStats run_restart_rank(exec::RankCtx& ctx, const Params& params,
                              pfs::StorageBackend& backend,
                              iostats::TraceRecorder* trace, obs::Probe probe) {
  params.validate();
  AMRIO_EXPECTS_MSG(ctx.nranks() == params.nprocs,
                    "run_restart: engine ranks " << ctx.nranks()
                                                 << " != nprocs "
                                                 << params.nprocs);
  const auto iface = make_interface(params.interface);
  const int rank = ctx.rank();
  constexpr int kRestageTag = 74;
  const int dump = params.num_dumps - 1;  // restart from the last checkpoint

  const bool aggregated = params.aggregators > 0;
  std::optional<staging::AggTopology> topo;
  if (aggregated)
    topo = staging::AggTopology::make(params.nprocs, params.aggregators);
  const staging::AggregationConfig agg_cfg{params.aggregators,
                                           params.agg_link_bandwidth, 1.0e-6};
  const auto cdc = codec::make_codec(params.codec_spec());
  const bool encoded = params.codec_spec().enabled();
  const int read_tier =
      params.restart_from_bb ? pfs::kTierBurstBuffer : pfs::kTierPfs;
  const PartSpec spec =
      make_part_spec(params.part_bytes_at_dump(dump), params.vars_per_part);

  // The restage plan is a pure function of the parameters (task_doc_bytes is
  // exact, codec plans are pure in the raw size), so every rank derives the
  // same plan locally — restart read sizes are predicted byte-exactly the
  // same way write sizes are, with nothing read yet.
  std::vector<std::string> files(static_cast<std::size_t>(params.nprocs));
  std::vector<std::uint64_t> doc_bytes(
      static_cast<std::size_t>(params.nprocs));
  for (int r = 0; r < params.nprocs; ++r) {
    files[static_cast<std::size_t>(r)] =
        aggregated
            ? aggregated_file_path_for(params, *iface, topo->group_of(r), dump)
            : dump_file_path_for(params, *iface, r, dump);
    doc_bytes[static_cast<std::size_t>(r)] = iface->task_doc_bytes(
        spec, r, dump, params.parts_of_rank(r), params.meta_size);
  }
  const staging::RestagePlan plan = staging::make_restage_plan(
      files, doc_bytes, *cdc, aggregated ? &*topo : nullptr);
  const staging::RestageSlice& mine =
      plan.slices[static_cast<std::size_t>(rank)];

  const bool contents = backend.stores_contents();
  auto find_extent = [&](const std::string& file) {
    for (const auto& e : plan.extents)
      if (e.file == file) return &e;
    AMRIO_ENSURES_MSG(false, "run_restart: no extent for " << file);
    return static_cast<const staging::RestageExtent*>(nullptr);
  };
  auto validate_extent = [&](const staging::RestageExtent& e) {
    AMRIO_EXPECTS_MSG(
        backend.exists(e.file),
        "run_restart: dump file missing (run the dump loop first): "
            << e.file);
    AMRIO_ENSURES_MSG(backend.size(e.file) == e.raw_bytes,
                      "run_restart: " << e.file
                                      << " drifted from the planned size");
  };
  auto fetch_extent = [&](const staging::RestageExtent& e) {
    validate_extent(e);
    // Accounting-only backends degrade to exact sizes of zero bytes — the
    // same contract StagingBackend's accounting-mode drain keeps.
    if (!contents) return std::vector<std::byte>(e.raw_bytes);
    return backend.read(e.file);
  };

  // Byte path: recover this rank's task document.
  std::vector<std::byte> doc;
  if (aggregated) {
    // Two-phase in reverse: the aggregator fetches the whole subfile, slices
    // it at the planned offsets, re-encodes each member's document for the
    // wire, and fans them back out over scatterv_group; every member decodes
    // its own document — encoded bytes cross the link, raw bytes come back.
    const int group = topo->group_of(rank);
    const int agg = topo->aggregator_of_group(group);
    const auto members = topo->members_of(group);
    std::vector<std::vector<std::byte>> payloads;
    if (rank == agg) {
      const std::vector<std::byte> subfile = fetch_extent(*find_extent(mine.file));
      payloads.reserve(members.size());
      for (int r : members) {
        const auto& s = plan.slices[static_cast<std::size_t>(r)];
        const std::span<const std::byte> piece(subfile.data() + s.offset,
                                               s.raw_bytes);
        payloads.push_back(encoded ? cdc->encode(piece)
                                   : std::vector<std::byte>(piece.begin(),
                                                            piece.end()));
      }
    }
    std::vector<std::byte> blob =
        exec::scatterv_group(ctx, payloads, members, agg, kRestageTag, probe);
    doc = encoded ? cdc->decode(blob) : std::move(blob);
  } else {
    // Every rank reads its own byte range of its dump file (concurrent
    // readers of a shared MIF-group/SIF file need no baton — nothing is
    // mutated, and the ranged read keeps a 128-rank SIF restart from
    // materializing the whole shared image once per rank).
    validate_extent(*find_extent(mine.file));
    doc = contents
              ? backend.read_range(mine.file, mine.offset, mine.raw_bytes)
              : std::vector<std::byte>(mine.raw_bytes);
  }
  AMRIO_ENSURES_MSG(doc.size() == mine.raw_bytes,
                    "run_restart: recovered document size mismatch on rank "
                        << rank);

  if (trace != nullptr)
    trace->record_read(dump, 0, rank, mine.file, mine.raw_bytes,
                       encoded ? mine.encoded_bytes : 0, mine.decode_seconds,
                       read_tier, aggregated ? topo->group_of(rank) : -1);

  const auto all_bytes =
      ctx.gather(static_cast<std::uint64_t>(doc.size()), 0);
  const auto all_hash = ctx.gather(restart_hash(doc), 0);
  ctx.barrier();

  RestartStats stats;
  if (rank == 0) {
    stats.dump = dump;
    stats.task_bytes = all_bytes;
    stats.task_hash = all_hash;
    stats.slices = plan.slices;
    for (int r = 0; r < params.nprocs; ++r) {
      AMRIO_ENSURES_MSG(
          all_bytes[static_cast<std::size_t>(r)] ==
              doc_bytes[static_cast<std::size_t>(r)],
          "run_restart: read-back not byte-conserving on rank " << r);
      stats.codec.add_decode(
          dump, -1, cdc->plan(doc_bytes[static_cast<std::size_t>(r)]),
          plan.slices[static_cast<std::size_t>(r)].decode_seconds);
    }
    stats.raw_bytes = plan.raw_bytes();
    stats.encoded_bytes = plan.encoded_bytes();
    stats.decode_gate = plan.decode_gate();
    std::vector<double> group_cost;  // per-group fan-out cost (aggregated)
    if (aggregated) {
      // Concurrent groups: the slowest scatter gates the restart.
      group_cost.assign(static_cast<std::size_t>(topo->ngroups()), 0.0);
      for (int g = 0; g < topo->ngroups(); ++g) {
        const int agg = topo->aggregator_of_group(g);
        std::uint64_t shipped = 0;
        int nmessages = 0;
        for (int r : topo->members_of(g)) {
          if (r == agg) continue;
          shipped += plan.slices[static_cast<std::size_t>(r)].encoded_bytes;
          ++nmessages;
        }
        group_cost[static_cast<std::size_t>(g)] =
            staging::ship_cost(agg_cfg, shipped, nmessages);
        stats.scatter_seconds = std::max(stats.scatter_seconds,
                                         group_cost[static_cast<std::size_t>(g)]);
      }
    }
    stats.requests = plan.read_requests(0.0, params.restart_from_bb);
    // Metadata read-back: the root document, and under aggregation the index
    // locating every task document — always cold PFS reads (metadata never
    // stages).
    if (trace != nullptr)
      for (const auto& req : stats.requests)
        if (req.op == pfs::kOpPrefetch)
          trace->record_prefetch(dump, 0, req.client, req.file, req.bytes,
                                 req.tier,
                                 aggregated ? topo->group_of(req.client) : -1);
    auto read_meta = [&](const std::string& path) {
      const std::uint64_t meta_bytes = backend.size(path);
      stats.requests.push_back(pfs::IoRequest{0, 0.0, path, meta_bytes,
                                              pfs::kTierPfs, pfs::kOpRead});
      if (trace != nullptr)
        trace->record_read(dump, -1, 0, path, meta_bytes, 0, 0.0,
                           pfs::kTierPfs, -1);
    };
    read_meta(root_file_path(params, dump));
    if (aggregated) read_meta(aggregated_index_path_for(params, *iface, dump));

    if (probe.metrics) {
      probe.metrics->add("macsio.restarts", 1);
      probe.metrics->add("restart.raw_bytes",
                         static_cast<std::int64_t>(stats.raw_bytes));
      probe.metrics->add("restart.encoded_bytes",
                         static_cast<std::int64_t>(stats.encoded_bytes));
    }
    if (probe.tracer) {
      // Dump-side instrumentation in reverse, emitted by rank 0 from the
      // pure restage plan — engine-invariant like the dump spans. Data
      // arrival is the group's scatter cost (aggregated) or the restart
      // epoch (direct reads are timed by the SimFs replay instead).
      const std::string label = "restart " + std::to_string(dump);
      double phase_end = 0.0;
      for (int r = 0; r < params.nprocs; ++r) {
        const double arrival =
            aggregated ? group_cost[static_cast<std::size_t>(topo->group_of(r))]
                       : 0.0;
        phase_end = std::max(
            arrival + plan.slices[static_cast<std::size_t>(r)].decode_seconds,
            phase_end);
      }
      const std::uint64_t phase = probe.tracer->record(
          obs::Span{0, 0, -1, "restart", label, 0.0, phase_end});
      std::vector<std::uint64_t> scatter_span;
      if (aggregated) {
        scatter_span.assign(static_cast<std::size_t>(topo->ngroups()), 0);
        for (int g = 0; g < topo->ngroups(); ++g) {
          if (group_cost[static_cast<std::size_t>(g)] <= 0.0) continue;
          const int agg = topo->aggregator_of_group(g);
          std::uint64_t shipped = 0;
          for (int r : topo->members_of(g))
            if (r != agg)
              shipped += plan.slices[static_cast<std::size_t>(r)].encoded_bytes;
          obs::Span sc;
          sc.parent = phase;
          sc.rank = agg;
          sc.stage = "scatter";
          sc.detail = label;
          sc.start = 0.0;
          sc.end = group_cost[static_cast<std::size_t>(g)];
          sc.resource = "agg_link";
          // Bandwidth part only — the per-message latency term is invariant
          // under link relief (see the ship span).
          sc.service = static_cast<double>(shipped) / agg_cfg.link_bandwidth;
          sc.res = "agg_link";
          scatter_span[static_cast<std::size_t>(g)] =
              probe.tracer->record(std::move(sc));
        }
      }
      for (int r = 0; r < params.nprocs; ++r) {
        const double decode =
            plan.slices[static_cast<std::size_t>(r)].decode_seconds;
        if (decode <= 0.0) continue;
        const int g = aggregated ? topo->group_of(r) : -1;
        const double arrival =
            aggregated ? group_cost[static_cast<std::size_t>(g)] : 0.0;
        obs::Span ds;
        ds.parent = phase;
        ds.rank = r;
        ds.stage = "decode";
        ds.detail = label;
        ds.start = arrival;
        ds.end = arrival + decode;
        ds.service = decode;
        ds.res = "codec_cpu";
        const std::uint64_t span = probe.tracer->record(std::move(ds));
        if (aggregated && scatter_span[static_cast<std::size_t>(g)] != 0)
          probe.tracer->edge(scatter_span[static_cast<std::size_t>(g)], span);
      }
    }
    if (probe.ledger) {
      obs::ResourceLedger& lg = *probe.ledger;
      lg.declare("codec_cpu", params.nprocs);
      double decode_total = 0.0;
      for (int r = 0; r < params.nprocs; ++r) {
        const double decode =
            plan.slices[static_cast<std::size_t>(r)].decode_seconds;
        decode_total += decode;
        const double arrival =
            aggregated ? group_cost[static_cast<std::size_t>(topo->group_of(r))]
                       : 0.0;
        lg.extend_makespan(arrival + decode);
      }
      lg.add_busy("codec_cpu", decode_total);
      if (aggregated) {
        lg.declare("agg_link", topo->ngroups());
        for (int g = 0; g < topo->ngroups(); ++g)
          lg.add_busy("agg_link", group_cost[static_cast<std::size_t>(g)]);
      }
    }
  }
  ctx.barrier();
  return stats;
}

}  // namespace

std::uint64_t restart_hash(std::span<const std::byte> data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

RestartStats run_restart(exec::Engine& engine, const Params& params,
                         pfs::StorageBackend& backend,
                         iostats::TraceRecorder* trace, obs::Probe probe) {
  RestartStats result;
  engine.run([&](exec::RankCtx& ctx) {
    RestartStats local = run_restart_rank(ctx, params, backend, trace, probe);
    if (ctx.rank() == 0) result = std::move(local);
  });
  return result;
}

DumpStats run_macsio(exec::Engine& engine, const Params& params,
                     pfs::StorageBackend& backend,
                     iostats::TraceRecorder* trace, obs::Probe probe) {
  DumpStats result;
  engine.run([&](exec::RankCtx& ctx) {
    DumpStats local = run_macsio_rank(ctx, params, backend, trace, probe);
    if (ctx.rank() == 0) result = std::move(local);
  });
  return result;
}

DumpStats run_macsio(const Params& params, pfs::StorageBackend& backend,
                     iostats::TraceRecorder* trace, obs::Probe probe) {
  exec::SerialEngine engine(params.nprocs);
  return run_macsio(engine, params, backend, trace, probe);
}

DumpStats run_macsio_spmd(simmpi::Comm& comm, const Params& params,
                          pfs::StorageBackend& backend,
                          iostats::TraceRecorder* trace, obs::Probe probe) {
  exec::CommCtx ctx(comm);
  return run_macsio_rank(ctx, params, backend, trace, probe);
}

}  // namespace amrio::macsio

#include "macsio/part.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace amrio::macsio {

PartSpec make_part_spec(std::uint64_t target_bytes, int nvars) {
  AMRIO_EXPECTS(nvars >= 1);
  AMRIO_EXPECTS(target_bytes >= 1);
  const std::uint64_t values =
      (target_bytes + 8 * static_cast<std::uint64_t>(nvars) - 1) /
      (8 * static_cast<std::uint64_t>(nvars));
  PartSpec spec;
  spec.nvars = nvars;
  spec.nx = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(values))));
  if (spec.nx < 1) spec.nx = 1;
  spec.ny = static_cast<int>((values + spec.nx - 1) /
                             static_cast<std::uint64_t>(spec.nx));
  if (spec.ny < 1) spec.ny = 1;
  AMRIO_ENSURES(spec.raw_bytes() >= target_bytes);
  return spec;
}

}  // namespace amrio::macsio

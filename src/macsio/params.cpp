#include "macsio/params.hpp"

#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

namespace amrio::macsio {

const char* to_string(Interface i) {
  switch (i) {
    case Interface::kMiftmpl: return "miftmpl";
    case Interface::kH5Lite: return "h5lite";
    case Interface::kRaw: return "raw";
  }
  return "?";
}

const char* to_string(FileMode m) {
  return m == FileMode::kMif ? "MIF" : "SIF";
}

Interface interface_from_string(const std::string& s) {
  const std::string v = util::to_lower(s);
  if (v == "miftmpl" || v == "json") return Interface::kMiftmpl;
  // hdf5 maps onto our self-describing binary stand-in (DESIGN.md §2)
  if (v == "h5lite" || v == "hdf5") return Interface::kH5Lite;
  if (v == "raw" || v == "binary") return Interface::kRaw;
  throw std::invalid_argument("macsio: unknown interface '" + s + "'");
}

codec::CodecSpec Params::codec_spec() const {
  codec::CodecSpec spec;
  spec.name = codec;
  spec.error_bound = codec_error_bound;
  spec.var_error_bounds = codec::parse_var_bounds(codec_var_bounds);
  spec.throughput = codec_throughput;
  spec.decode_throughput = codec_decode_throughput;
  return spec;
}

namespace {

/// One home for every staging/codec/restart knob range check, so the CLI
/// rejects a bad --aggregators count, an unknown --codec name, an
/// out-of-range --codec_error_bound, or a negative --prefetch with the same
/// one-line std::invalid_argument shape.
void check_staging_codec_knobs(const Params& p, bool aggregators_given) {
  if (aggregators_given && p.aggregators <= 0)
    throw std::invalid_argument(
        "macsio: --aggregators must be a positive aggregator count (got " +
        std::to_string(p.aggregators) +
        "); omit the flag to disable aggregation");
  try {
    codec::validate_spec(p.codec_spec());
  } catch (const std::invalid_argument& e) {
    // keep the codec layer's message, stamped with the owning knob set
    throw std::invalid_argument("macsio: --codec knobs: " +
                                std::string(e.what()));
  }
  if (p.prefetch_streams < 0)
    throw std::invalid_argument(
        "macsio: --prefetch must be >= 0 prefetch streams per node (got " +
        std::to_string(p.prefetch_streams) + "; 0 = drain concurrency)");
  if (p.prefetch_streams > 0 && !p.restart_from_bb)
    throw std::invalid_argument(
        "macsio: --prefetch only applies to '--read_staging bb' restarts");
  if (p.restart_from_bb && !p.restart)
    throw std::invalid_argument(
        "macsio: '--read_staging bb' does nothing without --restart");
}

}  // namespace

Params Params::from_cli(const std::vector<std::string>& args) {
  util::ArgParser cli("macsio", "MACSio-compatible proxy I/O application");
  cli.add_option("interface", "output plugin: miftmpl|hdf5|h5lite|raw", 1,
                 std::string("miftmpl"));
  cli.add_option("parallel_file_mode", "MIF <nfiles> or SIF 1", 2);
  cli.add_option("num_dumps", "number of dumps to marshal", 1, std::string("10"));
  cli.add_option("part_size", "nominal per-part request size (bytes)", 1,
                 std::string("80000"));
  cli.add_option("avg_num_parts", "average mesh parts per task", 1,
                 std::string("1"));
  cli.add_option("vars_per_part", "mesh variables on each part", 1,
                 std::string("1"));
  cli.add_option("compute_time", "seconds of compute between dumps", 1,
                 std::string("0"));
  cli.add_option("meta_size", "additional metadata bytes per task", 1,
                 std::string("0"));
  cli.add_option("dataset_growth", "per-dump size multiplier", 1,
                 std::string("1"));
  cli.add_option("aggregators", "two-phase aggregation group count", 1);
  cli.add_option("agg_link_bw", "rank-to-aggregator link bandwidth (bytes/s)",
                 1, std::string("1.25e10"));
  cli.add_option("staging", "dump staging tier: none|bb", 1,
                 std::string("none"));
  cli.add_option("codec", "in-situ compression model: identity|lossless|ebl",
                 1, std::string("identity"));
  cli.add_option("codec_error_bound", "relative error bound for --codec ebl",
                 1, std::string("1e-3"));
  cli.add_option("codec_var_bounds",
                 "comma-separated per-variable error bounds for --codec ebl",
                 1, std::string(""));
  cli.add_option("codec_throughput",
                 "modeled encode throughput (bytes/s); 0 = codec default", 1,
                 std::string("0"));
  cli.add_option("codec_decode_throughput",
                 "modeled decode throughput (bytes/s); 0 = codec default", 1,
                 std::string("0"));
  cli.add_flag("restart", "read the last dump back after the dump loop");
  cli.add_option("read_staging", "restart read tier: none|bb", 1,
                 std::string("none"));
  cli.add_option("prefetch",
                 "per-node prefetch streams for bb restarts; 0 = drain "
                 "concurrency",
                 1, std::string("0"));
  cli.add_option("nprocs", "virtual MPI tasks", 1, std::string("1"));
  cli.add_option("output_dir", "output directory", 1, std::string("macsio_out"));
  cli.add_option("fill", "value fill mode: sized|real", 1, std::string("sized"));
  cli.add_option("seed", "rng seed for real fill", 1, std::string("7"));
  cli.parse(args);

  Params p;
  p.interface = interface_from_string(cli.get("interface"));
  if (cli.flag("parallel_file_mode") || cli.has("parallel_file_mode")) {
    const auto mode = cli.get_all("parallel_file_mode");
    if (!mode.empty()) {
      const std::string kind = util::to_lower(mode.at(0));
      if (kind == "mif") {
        p.file_mode = FileMode::kMif;
        p.mif_files = mode.size() > 1 ? std::stoi(mode[1]) : 0;
      } else if (kind == "sif") {
        p.file_mode = FileMode::kSif;
      } else {
        throw std::invalid_argument("macsio: bad parallel_file_mode '" +
                                    mode[0] + "'");
      }
    }
  }
  p.num_dumps = static_cast<int>(cli.get_int("num_dumps"));
  p.part_size = util::parse_bytes(cli.get("part_size"));
  p.avg_num_parts = cli.get_double("avg_num_parts");
  p.vars_per_part = static_cast<int>(cli.get_int("vars_per_part"));
  p.compute_time = cli.get_double("compute_time");
  p.meta_size = util::parse_bytes(cli.get("meta_size"));
  p.dataset_growth = cli.get_double("dataset_growth");
  const bool aggregators_given = cli.has("aggregators");
  if (aggregators_given)  // no default: present only when given
    p.aggregators = static_cast<int>(cli.get_int("aggregators"));
  p.agg_link_bandwidth = cli.get_double("agg_link_bw");
  const std::string staging = util::to_lower(cli.get("staging"));
  if (staging == "bb") p.stage_to_bb = true;
  else if (staging != "none")
    throw std::invalid_argument("macsio: bad staging tier '" + staging +
                                "' (expected none|bb)");
  p.codec = util::to_lower(cli.get("codec"));
  p.codec_error_bound = cli.get_double("codec_error_bound");
  p.codec_var_bounds = cli.get("codec_var_bounds");
  p.codec_throughput = cli.get_double("codec_throughput");
  p.codec_decode_throughput = cli.get_double("codec_decode_throughput");
  p.restart = cli.flag("restart");
  const std::string read_staging = util::to_lower(cli.get("read_staging"));
  if (read_staging == "bb") p.restart_from_bb = true;
  else if (read_staging != "none")
    throw std::invalid_argument("macsio: bad restart read tier '" +
                                read_staging + "' (expected none|bb)");
  p.prefetch_streams = static_cast<int>(cli.get_int("prefetch"));
  check_staging_codec_knobs(p, aggregators_given);
  p.nprocs = static_cast<int>(cli.get_int("nprocs"));
  p.output_dir = cli.get("output_dir");
  const std::string fill = util::to_lower(cli.get("fill"));
  if (fill == "sized") p.fill = FillMode::kSized;
  else if (fill == "real") p.fill = FillMode::kReal;
  else throw std::invalid_argument("macsio: bad fill mode '" + fill + "'");
  p.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  p.validate();
  return p;
}

std::vector<std::string> Params::to_cli() const {
  std::vector<std::string> argv;
  auto push = [&argv](const std::string& k, const std::string& v) {
    argv.push_back("--" + k);
    argv.push_back(v);
  };
  push("interface", to_string(interface));
  argv.push_back("--parallel_file_mode");
  argv.push_back(to_string(file_mode));
  // Under aggregation the subfile count comes from --aggregators; emit the
  // grouping-disabled form so the argv round-trips through validate().
  argv.push_back(file_mode != FileMode::kMif ? std::string("1")
                 : aggregators > 0
                     ? std::string("0")
                     : std::to_string(mif_files == 0 ? nprocs : mif_files));
  push("num_dumps", std::to_string(num_dumps));
  push("part_size", std::to_string(part_size));
  push("avg_num_parts", util::format_g(avg_num_parts, 17));
  push("vars_per_part", std::to_string(vars_per_part));
  push("compute_time", util::format_g(compute_time, 17));
  push("meta_size", std::to_string(meta_size));
  push("dataset_growth", util::format_g(dataset_growth, 17));
  if (aggregators > 0) {
    push("aggregators", std::to_string(aggregators));
    push("agg_link_bw", util::format_g(agg_link_bandwidth, 17));
  }
  if (stage_to_bb) push("staging", "bb");
  if (codec != "identity") {
    push("codec", codec);
    push("codec_error_bound", util::format_g(codec_error_bound, 17));
    if (!codec_var_bounds.empty())
      push("codec_var_bounds",
           codec::format_var_bounds(codec::parse_var_bounds(codec_var_bounds)));
    push("codec_throughput", util::format_g(codec_throughput, 17));
    push("codec_decode_throughput",
         util::format_g(codec_decode_throughput, 17));
  }
  if (restart) argv.push_back("--restart");
  if (restart_from_bb) push("read_staging", "bb");
  if (prefetch_streams > 0)
    push("prefetch", std::to_string(prefetch_streams));
  push("nprocs", std::to_string(nprocs));
  push("output_dir", output_dir);
  push("fill", fill == FillMode::kSized ? "sized" : "real");
  push("seed", std::to_string(seed));
  return argv;
}

std::string Params::to_command_line() const {
  return "macsio " + util::join(to_cli(), " ");
}

void Params::validate() const {
  AMRIO_EXPECTS_MSG(num_dumps >= 1, "macsio: num_dumps must be >= 1");
  // the 3-digit dump field is baked into the output file names, and the
  // 7-digit group/task fields into the fixed-width aggregation index
  // (zero_pad in the file paths pads to a *minimum* width, so rank counts
  // beyond 5 digits simply print wider there and names stay unique)
  AMRIO_EXPECTS_MSG(num_dumps <= 999, "macsio: num_dumps must be <= 999");
  AMRIO_EXPECTS_MSG(nprocs <= 9999999, "macsio: nprocs must be <= 9999999");
  AMRIO_EXPECTS_MSG(part_size >= 8, "macsio: part_size must be >= 8 bytes");
  AMRIO_EXPECTS_MSG(avg_num_parts > 0, "macsio: avg_num_parts must be > 0");
  AMRIO_EXPECTS_MSG(vars_per_part >= 1, "macsio: vars_per_part must be >= 1");
  AMRIO_EXPECTS_MSG(compute_time >= 0, "macsio: compute_time must be >= 0");
  AMRIO_EXPECTS_MSG(dataset_growth > 0, "macsio: dataset_growth must be > 0");
  AMRIO_EXPECTS_MSG(dataset_growth < 2.0,
                    "macsio: dataset_growth >= 2 would overflow quickly");
  AMRIO_EXPECTS_MSG(nprocs >= 1, "macsio: nprocs must be >= 1");
  AMRIO_EXPECTS_MSG(mif_files >= 0, "macsio: MIF file count must be >= 0");
  AMRIO_EXPECTS_MSG(mif_files <= nprocs,
                    "macsio: MIF file count cannot exceed nprocs");
  AMRIO_EXPECTS_MSG(aggregators >= 0, "macsio: aggregators must be >= 0");
  AMRIO_EXPECTS_MSG(aggregators <= nprocs,
                    "macsio: aggregators cannot exceed nprocs");
  AMRIO_EXPECTS_MSG(aggregators == 0 || file_mode == FileMode::kMif,
                    "macsio: two-phase aggregation requires MIF file mode");
  AMRIO_EXPECTS_MSG(aggregators == 0 || mif_files == 0,
                    "macsio: aggregation supersedes MIF file grouping — use "
                    "--aggregators or MIF <n>, not both");
  AMRIO_EXPECTS_MSG(agg_link_bandwidth > 0,
                    "macsio: agg_link_bw must be > 0");
  AMRIO_EXPECTS_MSG(prefetch_streams >= 0, "macsio: prefetch must be >= 0");
  AMRIO_EXPECTS_MSG(prefetch_streams == 0 || restart_from_bb,
                    "macsio: prefetch only applies to bb restart reads");
  // mirror the CLI rejection so a validate()-clean Params always survives
  // the to_cli()/from_cli() round trip
  AMRIO_EXPECTS_MSG(!restart_from_bb || restart,
                    "macsio: read_staging bb does nothing without restart");
  // single source of truth for the codec knob ranges: the codec registry
  try {
    codec::validate_spec(codec_spec());
  } catch (const std::invalid_argument& e) {
    AMRIO_EXPECTS_MSG(false, "macsio: " << e.what());
  }
}

std::uint64_t Params::part_bytes_at_dump(int dump) const {
  AMRIO_EXPECTS(dump >= 0);
  const double grown =
      static_cast<double>(part_size) * std::pow(dataset_growth, dump);
  return static_cast<std::uint64_t>(std::llround(grown));
}

int Params::parts_of_rank(int rank) const {
  AMRIO_EXPECTS(rank >= 0 && rank < nprocs);
  const std::int64_t total =
      std::llround(avg_num_parts * static_cast<double>(nprocs));
  const std::int64_t base = total / nprocs;
  const std::int64_t extras = total % nprocs;
  return static_cast<int>(base + (rank < extras ? 1 : 0));
}

}  // namespace amrio::macsio

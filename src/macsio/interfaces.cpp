#include "macsio/interfaces.hpp"

#include <cstdio>
#include <cstring>
#include <vector>

#include "util/assert.hpp"
#include "util/format.hpp"

namespace amrio::macsio {

std::uint64_t IoInterface::task_doc_bytes(const PartSpec& spec, int rank,
                                          int dump, int nparts,
                                          std::uint64_t meta_size) const {
  CountingSink sink;
  util::Xoshiro256 rng(0);
  begin_task_doc(sink, rank, dump);
  for (int p = 0; p < nparts; ++p) {
    if (p > 0) part_separator(sink);
    write_part(sink, spec, p, FillMode::kSized, rng);
  }
  end_task_doc(sink, meta_size);
  return sink.bytes();
}

namespace {

/// Fixed-width (23 char) rendering of a value in [0, 1): "1.23456789012345678e-01".
void format_value(char* buf, double v) {
  std::snprintf(buf, kJsonValueWidth + 1, "%.17e", v);
}

// --------------------------------------------------------------- miftmpl

class MiftmplInterface final : public IoInterface {
 public:
  std::string file_tag() const override { return "json"; }
  std::string extension() const override { return "json"; }

  void begin_task_doc(Sink& sink, int rank, int dump) const override {
    sink.write("{\"task\":" + std::to_string(rank) +
               ",\"dump\":" + std::to_string(dump) + ",\"parts\":[");
  }

  void part_separator(Sink& sink) const override { sink.write(","); }

  void end_task_doc(Sink& sink, std::uint64_t meta_size) const override {
    sink.write("],\"meta\":\"");
    static const std::string kPad(4096, ' ');
    std::uint64_t remaining = meta_size;
    while (remaining > 0) {
      const std::size_t chunk =
          static_cast<std::size_t>(std::min<std::uint64_t>(remaining, kPad.size()));
      sink.write(std::string_view(kPad.data(), chunk));
      remaining -= chunk;
    }
    sink.write("\"}\n");
  }

  void write_part(Sink& sink, const PartSpec& spec, int part_id, FillMode fill,
                  util::Xoshiro256& rng) const override {
    sink.write("{\"part\":{\"id\":" + std::to_string(part_id) +
               ",\"nx\":" + std::to_string(spec.nx) +
               ",\"ny\":" + std::to_string(spec.ny) +
               ",\"nvars\":" + std::to_string(spec.nvars) + "},\"vars\":{");
    const std::uint64_t n = spec.values_per_var();
    char value_buf[kJsonValueWidth + 1];
    // In sized mode all values are the same token, so one pre-built chunk is
    // replayed for every part of every call (this is what keeps repeated
    // calibration runs and many-small-parts dumps cheap).
    static const std::string zero_chunk = [] {
      char buf[kJsonValueWidth + 1];
      format_value(buf, 0.0);
      const std::string token = std::string(buf) + ",";
      AMRIO_ENSURES(token.size() == kJsonValueWidth + 1);
      std::string chunk;
      while (chunk.size() < (1u << 16)) chunk += token;
      return chunk;
    }();
    for (int v = 0; v < spec.nvars; ++v) {
      if (v > 0) sink.write(",");
      char name[32];
      std::snprintf(name, sizeof(name), "\"var%04d\":[", v);
      sink.write(name);
      if (fill == FillMode::kSized) {
        // n values, each 24 bytes including its trailing comma; the final
        // comma is replaced by the closing bracket below.
        std::uint64_t remaining = n * (kJsonValueWidth + 1);
        while (remaining > 0) {
          const std::size_t chunk = static_cast<std::size_t>(
              std::min<std::uint64_t>(remaining, zero_chunk.size()));
          sink.write(std::string_view(zero_chunk.data(), chunk));
          remaining -= chunk;
        }
      } else {
        std::string buf;
        buf.reserve(1 << 16);
        for (std::uint64_t i = 0; i < n; ++i) {
          format_value(value_buf, rng.uniform());
          buf.append(value_buf, kJsonValueWidth);
          buf.push_back(',');
          if (buf.size() >= (1u << 16)) {
            sink.write(buf);
            buf.clear();
          }
        }
        sink.write(buf);
      }
      // overwrite-style close: emit ']' in place of the final comma is not
      // possible on an append-only sink, so the encoding always ends the
      // value list with a trailing comma token then "null]" sentinel —
      // kept fixed-width by writing "null]" (5 bytes) after the last comma.
      sink.write("null]");
    }
    sink.write("}}");
  }
};

// ---------------------------------------------------------------- h5lite

class H5LiteInterface : public IoInterface {
 public:
  std::string file_tag() const override { return "h5"; }
  std::string extension() const override { return "h5"; }

  void begin_task_doc(Sink& sink, int rank, int dump) const override {
    char header[32];
    std::memcpy(header, "H5LITE01", 8);
    write_u32(header + 8, static_cast<std::uint32_t>(rank));
    write_u32(header + 12, static_cast<std::uint32_t>(dump));
    sink.write(std::as_bytes(std::span<const char>(header, 16)));
  }

  void part_separator(Sink&) const override {}

  void end_task_doc(Sink& sink, std::uint64_t meta_size) const override {
    static const std::vector<std::byte> kZeros(4096, std::byte{0});
    std::uint64_t remaining = meta_size;
    while (remaining > 0) {
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining, kZeros.size()));
      sink.write(std::span<const std::byte>(kZeros.data(), chunk));
      remaining -= chunk;
    }
  }

  void write_part(Sink& sink, const PartSpec& spec, int part_id, FillMode fill,
                  util::Xoshiro256& rng) const override {
    char header[64];
    std::memcpy(header, "DSET", 4);
    write_u32(header + 4, static_cast<std::uint32_t>(part_id));
    write_u32(header + 8, static_cast<std::uint32_t>(spec.nx));
    write_u32(header + 12, static_cast<std::uint32_t>(spec.ny));
    write_u32(header + 16, static_cast<std::uint32_t>(spec.nvars));
    write_u32(header + 20, 1);  // dtype: 1 = float64
    sink.write(std::as_bytes(std::span<const char>(header, 24)));
    write_values(sink, spec.total_values(), fill, rng);
  }

 private:
  static void write_u32(char* dst, std::uint32_t v) {
    std::memcpy(dst, &v, sizeof(v));
  }

 protected:
  static void write_values(Sink& sink, std::uint64_t n, FillMode fill,
                           util::Xoshiro256& rng) {
    if (fill == FillMode::kSized) {
      static const std::vector<std::byte> kZeros(1 << 16, std::byte{0});
      std::uint64_t remaining = n * 8;
      while (remaining > 0) {
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, kZeros.size()));
        sink.write(std::span<const std::byte>(kZeros.data(), chunk));
        remaining -= chunk;
      }
      return;
    }
    std::vector<double> buf;
    buf.reserve(1 << 13);
    for (std::uint64_t i = 0; i < n; ++i) {
      buf.push_back(rng.uniform());
      if (buf.size() == (1u << 13)) {
        sink.write(std::as_bytes(std::span<const double>(buf)));
        buf.clear();
      }
    }
    if (!buf.empty()) sink.write(std::as_bytes(std::span<const double>(buf)));
  }
};

// ------------------------------------------------------------------ raw

class RawInterface final : public H5LiteInterface {
 public:
  std::string file_tag() const override { return "raw"; }
  std::string extension() const override { return "bin"; }

  void begin_task_doc(Sink&, int, int) const override {}

  void write_part(Sink& sink, const PartSpec& spec, int /*part_id*/,
                  FillMode fill, util::Xoshiro256& rng) const override {
    write_values(sink, spec.total_values(), fill, rng);
  }
};

}  // namespace

std::unique_ptr<IoInterface> make_interface(Interface kind) {
  switch (kind) {
    case Interface::kMiftmpl: return std::make_unique<MiftmplInterface>();
    case Interface::kH5Lite: return std::make_unique<H5LiteInterface>();
    case Interface::kRaw: return std::make_unique<RawInterface>();
  }
  throw std::invalid_argument("make_interface: bad kind");
}

}  // namespace amrio::macsio

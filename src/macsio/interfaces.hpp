#pragma once
/// \file interfaces.hpp
/// MACSio output plugins. `miftmpl` emits the json documents of the paper's
/// Fig. 3 (fixed-width 23-char reals so file sizes are value-independent and
/// exactly computable); `h5lite` is a from-scratch self-describing binary
/// container standing in for HDF5; `raw` is headers + naked doubles.
///
/// Every plugin serializes through the Sink abstraction, so the same code
/// path feeds a real backend file or a pure byte counter; `part_bytes()` is
/// guaranteed equal to what `write_part()` produces (tested).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "macsio/params.hpp"
#include "macsio/part.hpp"
#include "pfs/backend.hpp"
#include "util/rng.hpp"

namespace amrio::macsio {

/// Byte sink: either a backend file or a counter.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(std::string_view text) = 0;
  virtual void write(std::span<const std::byte> data) = 0;
  virtual std::uint64_t bytes() const = 0;
};

class FileSink final : public Sink {
 public:
  explicit FileSink(pfs::OutFile& out) : out_(&out) {}
  void write(std::string_view text) override { out_->write(text); }
  void write(std::span<const std::byte> data) override { out_->write(data); }
  std::uint64_t bytes() const override { return out_->bytes_written(); }

 private:
  pfs::OutFile* out_;
};

class CountingSink final : public Sink {
 public:
  void write(std::string_view text) override { bytes_ += text.size(); }
  void write(std::span<const std::byte> data) override { bytes_ += data.size(); }
  std::uint64_t bytes() const override { return bytes_; }

 private:
  std::uint64_t bytes_ = 0;
};

/// Appends into a caller-owned byte buffer — the staging layer serializes a
/// rank's task document through this before shipping it to its aggregator.
class VectorSink final : public Sink {
 public:
  explicit VectorSink(std::vector<std::byte>& buf) : buf_(&buf) {}
  void write(std::string_view text) override {
    write(std::as_bytes(std::span<const char>(text.data(), text.size())));
  }
  void write(std::span<const std::byte> data) override {
    buf_->insert(buf_->end(), data.begin(), data.end());
    written_ += data.size();
  }
  std::uint64_t bytes() const override { return written_; }

 private:
  std::vector<std::byte>* buf_;
  std::uint64_t written_ = 0;
};

class IoInterface {
 public:
  virtual ~IoInterface() = default;
  /// Short name used in output file names ("json", "h5", "raw"), matching the
  /// paper's `macsio_json_{task}_{step}.json` pattern for the json interface.
  virtual std::string file_tag() const = 0;
  virtual std::string extension() const = 0;

  /// Serialize one part. Values are deterministic pseudo-data (kReal) or
  /// zeros (kSized) — byte counts are identical either way.
  virtual void write_part(Sink& sink, const PartSpec& spec, int part_id,
                          FillMode fill, util::Xoshiro256& rng) const = 0;

  /// Open a task document (rank's section within its dump file).
  virtual void begin_task_doc(Sink& sink, int rank, int dump) const = 0;
  /// Close the task document, appending `meta_size` padding bytes.
  virtual void end_task_doc(Sink& sink, std::uint64_t meta_size) const = 0;
  /// Separator between consecutive parts within one task document.
  virtual void part_separator(Sink& sink) const = 0;

  /// Exact bytes of a full task document containing `nparts` parts.
  std::uint64_t task_doc_bytes(const PartSpec& spec, int rank, int dump,
                               int nparts, std::uint64_t meta_size) const;
};

std::unique_ptr<IoInterface> make_interface(Interface kind);

/// Width of the fixed-width real encoding used by the json plugin.
inline constexpr int kJsonValueWidth = 23;

}  // namespace amrio::macsio

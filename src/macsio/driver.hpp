#pragma once
/// \file driver.hpp
/// The MACSio dump loop: `num_dumps` marshal/write cycles producing the
/// paper's Fig. 3 output pattern
///
///   data/macsio_json_{taskID:05d}_{stepID:03d}.json     (MIF, per task)
///   metadata/macsio_json_root_{stepID:03d}.json         (root, per step)
///
/// with `--dataset_growth` scaling part sizes between dumps and
/// `--compute_time` spacing the dump bursts on the logical clock (the
/// requests list can be replayed through pfs::SimFs for "dynamic" studies).
///
/// Two execution paths: a serial loop over virtual ranks (used by the
/// calibrator, which runs MACSio many times), and a true SPMD path over
/// simmpi threads with MIF baton-passing between group members.

#include <cstdint>
#include <vector>

#include "iostats/trace.hpp"
#include "macsio/params.hpp"
#include "macsio/part.hpp"
#include "pfs/backend.hpp"
#include "pfs/simfs.hpp"
#include "simmpi/comm.hpp"

namespace amrio::macsio {

struct DumpStats {
  /// Total bytes per dump (task files + root metadata).
  std::vector<std::uint64_t> bytes_per_dump;
  /// Per-dump, per-rank task-document bytes.
  std::vector<std::vector<std::uint64_t>> task_bytes;
  std::uint64_t total_bytes = 0;
  std::uint64_t nfiles = 0;
  /// One I/O request per (rank, dump) data write, timed on the logical
  /// compute clock; feed to pfs::SimFs for burst/bandwidth studies.
  std::vector<pfs::IoRequest> requests;

  /// Cumulative bytes after each dump.
  std::vector<double> cumulative() const;
};

/// Serial driver: iterates all virtual ranks in-process.
/// Trace events use step = dump index, level = 0 for task data and level = -1
/// for root metadata (MACSio has no AMR-level concept — the granularity gap
/// the paper discusses in §III-B).
DumpStats run_macsio(const Params& params, pfs::StorageBackend& backend,
                     iostats::TraceRecorder* trace = nullptr);

/// SPMD driver: call from inside simmpi::run_spmd with comm.size() ==
/// params.nprocs. Rank 0's return value carries the full statistics.
DumpStats run_macsio_spmd(simmpi::Comm& comm, const Params& params,
                          pfs::StorageBackend& backend,
                          iostats::TraceRecorder* trace = nullptr);

/// Path of a task's dump file (group file under MIF, shared file under SIF).
std::string dump_file_path(const Params& params, int rank, int dump);
/// Path of the per-dump root metadata file.
std::string root_file_path(const Params& params, int dump);
/// The per-dump root metadata document (also used by the model layer to
/// predict dump sizes exactly). `dump_bytes` is the task-data total of the
/// dump, which the document reports.
std::string root_meta_text(const Params& params, int dump, const PartSpec& spec,
                           std::uint64_t dump_bytes);

}  // namespace amrio::macsio

#pragma once
/// \file driver.hpp
/// The MACSio dump loop: `num_dumps` marshal/write cycles producing the
/// paper's Fig. 3 output pattern
///
///   data/macsio_json_{taskID:05d}_{stepID:03d}.json     (MIF, per task)
///   metadata/macsio_json_root_{stepID:03d}.json         (root, per step)
///
/// with `--dataset_growth` scaling part sizes between dumps and
/// `--compute_time` spacing the dump bursts on the logical clock (the
/// requests list can be replayed through pfs::SimFs for "dynamic" studies).
///
/// With `--aggregators N` the dump loop switches to two-phase aggregation:
///
///   data/macsio_json_agg_{groupID:05d}_{stepID:03d}.json  (one per group)
///   metadata/macsio_json_index_{stepID:03d}.txt           (task locations)
///
/// — ranks serialize their task documents in memory and ship them to their
/// group's aggregator (`exec::gatherv_group`), so only aggregators open
/// files; the subfile holds the group's documents in rank order,
/// byte-conserving against `task_doc_bytes()`.
///
/// There is ONE driver body, written SPMD-style against `exec::RankCtx`
/// (MIF baton-passing between group members, end-of-dump gather to rank 0).
/// How the ranks execute is the engine's choice: `exec::SerialEngine` runs
/// them as fibers on one thread (the calibrator's fast path), and
/// `exec::SpmdEngine` runs them as real simmpi threads — byte-identical by
/// construction.

#include <cstdint>
#include <span>
#include <vector>

#include "codec/stats.hpp"
#include "exec/engine.hpp"
#include "iostats/trace.hpp"
#include "macsio/params.hpp"
#include "macsio/part.hpp"
#include "obs/probe.hpp"
#include "pfs/backend.hpp"
#include "pfs/simfs.hpp"
#include "simmpi/comm.hpp"
#include "staging/restage.hpp"

namespace amrio::macsio {

struct DumpStats {
  /// Total bytes per dump (task files + root metadata).
  std::vector<std::uint64_t> bytes_per_dump;
  /// Per-dump, per-rank task-document bytes.
  std::vector<std::vector<std::uint64_t>> task_bytes;
  std::uint64_t total_bytes = 0;
  std::uint64_t nfiles = 0;
  /// One I/O request per (rank, dump) data write, timed on the logical
  /// compute clock; feed to pfs::SimFs for burst/bandwidth studies. With a
  /// non-identity --codec the data requests carry *encoded* sizes and their
  /// submit times include the modeled encode cpu (compression happens on the
  /// writer before anything is shipped or submitted); everything above
  /// (task_bytes, bytes_per_dump, total_bytes) stays raw.
  std::vector<pfs::IoRequest> requests;
  /// Codec accounting: raw vs encoded bytes and modeled encode cpu, per dump
  /// (one chunk per task document; metadata is never compressed). Identity
  /// codec: encoded == raw, zero cpu.
  codec::CodecStats codec;

  /// Cumulative bytes after each dump.
  std::vector<double> cumulative() const;
};

/// Run the dump loop on `engine` (engine.nranks() must equal params.nprocs)
/// and return the full statistics. Trace events use step = dump index,
/// level = 0 for task data and level = -1 for root metadata (MACSio has no
/// AMR-level concept — the granularity gap the paper discusses in §III-B).
///
/// `probe` (optional) turns on observability: per-rank "encode" spans
/// [submit, submit + modeled cpu], per-group "ship" spans for the two-phase
/// gatherv [submit + encode gate, subfile ready] with encode→ship
/// happens-before edges, and a per-dump "dump" phase span on the driver
/// track (rank −1) covering the submission window. Spans are emitted by
/// rank 0 from the gathered byte counts (codec plans are pure in the raw
/// size), so the stream is byte-identical across serial/spmd/event engines.
/// Metrics: macsio.dumps / macsio.dump_bytes counters plus the
/// exec.gatherv.* ship counters from the collectives themselves.
DumpStats run_macsio(exec::Engine& engine, const Params& params,
                     pfs::StorageBackend& backend,
                     iostats::TraceRecorder* trace = nullptr,
                     obs::Probe probe = {});

/// Checkpoint-restart read-back statistics — the write-side DumpStats in
/// reverse. Byte-conserving by construction: `task_bytes` equals the written
/// dump's per-rank document sizes, and in a content-storing backend every
/// recovered document is byte-identical to what was written (`task_hash`).
struct RestartStats {
  int dump = -1;  ///< the dump that was read back (the last one written)
  /// Per-rank decoded (raw) document bytes recovered.
  std::vector<std::uint64_t> task_bytes;
  /// Per-rank `restart_hash` of the recovered document — engines must agree,
  /// and in store mode it equals the hash of the originally written bytes.
  std::vector<std::uint64_t> task_hash;
  std::uint64_t raw_bytes = 0;      ///< decoded restart image (task data)
  std::uint64_t encoded_bytes = 0;  ///< fetched off the PFS/tier (task data)
  /// Slowest per-rank decode cpu — gates solver resume (0 under identity).
  double decode_gate = 0.0;
  /// Aggregated restarts: slowest group's cost of fanning subfile bytes back
  /// out over the interconnect (the gatherv ship in reverse).
  double scatter_seconds = 0.0;
  /// Per-rank read plan (file, offset, raw/encoded sizes, decode cpu).
  std::vector<staging::RestageSlice> slices;
  /// Restart read requests on the logical clock (submit 0): data fetches per
  /// `staging::RestagePlan::read_requests` (cold PFS reads, or prefetch +
  /// BB-read pairs under `--read_staging bb`), plus root/index metadata
  /// reads. Feed to pfs::SimFs to time the restart.
  std::vector<pfs::IoRequest> requests;
  /// Decode-side codec ledger (encode_seconds stays 0 — the split that keeps
  /// write-side reports honest).
  codec::CodecStats codec;
};

/// Read the last written dump back through the staging/codec pipeline in
/// reverse: aggregators fetch their subfile and fan the members' documents
/// back out over `exec::scatterv_group` (encoded bytes cross the link, each
/// member decodes its own document); unaggregated ranks read their own byte
/// range of their dump file. Requires the dump files of
/// `params.num_dumps - 1` to exist in `backend` (run the dump loop first).
/// Works against accounting-only backends too: sizes and requests stay
/// exact, contents degrade to zero bytes.
///
/// `probe` (optional) mirrors the dump-side instrumentation in reverse:
/// per-group "scatter" spans [0, group fan-out cost], per-rank "decode"
/// spans [arrival, arrival + decode cpu] with scatter→decode edges, and a
/// "restart" phase span on the driver track (rank −1). Emitted by rank 0,
/// engine-invariant. Metrics: macsio.restarts, restart.raw_bytes /
/// restart.encoded_bytes, plus exec.scatterv.* from the collective.
RestartStats run_restart(exec::Engine& engine, const Params& params,
                         pfs::StorageBackend& backend,
                         iostats::TraceRecorder* trace = nullptr,
                         obs::Probe probe = {});

/// Deterministic FNV-1a content hash used for `RestartStats::task_hash` —
/// exposed so tests can hash expected documents with the same function.
std::uint64_t restart_hash(std::span<const std::byte> data);

/// Convenience: run on a fiber-scheduled SerialEngine sized params.nprocs.
DumpStats run_macsio(const Params& params, pfs::StorageBackend& backend,
                     iostats::TraceRecorder* trace = nullptr,
                     obs::Probe probe = {});

/// Per-rank entry point for code already inside simmpi::run_spmd with
/// comm.size() == params.nprocs. Rank 0's return value carries the full
/// statistics; other ranks return empty stats.
DumpStats run_macsio_spmd(simmpi::Comm& comm, const Params& params,
                          pfs::StorageBackend& backend,
                          iostats::TraceRecorder* trace = nullptr,
                          obs::Probe probe = {});

/// Path of a task's dump file (group file under MIF, shared file under SIF,
/// the rank's group subfile under two-phase aggregation).
std::string dump_file_path(const Params& params, int rank, int dump);
/// Path of the per-dump root metadata file.
std::string root_file_path(const Params& params, int dump);
/// Subfile written by `group`'s aggregator at `dump` (params.aggregators > 0).
std::string aggregated_file_path(const Params& params, int group, int dump);
/// Per-dump aggregation index (rank 0): one fixed-width line per task with
/// its (group, task, offset, bytes) location inside the subfiles.
std::string aggregated_index_path(const Params& params, int dump);
/// Exact size of the aggregation index — fixed-width fields make it
/// computable without writing anything (the byte-conservation checks rely on
/// aggregated total == sum of task documents + this).
std::uint64_t aggregated_index_bytes(const Params& params);
/// The per-dump root metadata document (also used by the model layer to
/// predict dump sizes exactly). `dump_bytes` is the task-data total of the
/// dump, which the document reports.
std::string root_meta_text(const Params& params, int dump, const PartSpec& spec,
                           std::uint64_t dump_bytes);

}  // namespace amrio::macsio

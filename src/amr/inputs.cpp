#include "amr/inputs.hpp"

#include "util/assert.hpp"

namespace amrio::amr {

AmrInputs AmrInputs::from_inputs(const util::InputsFile& in) {
  AmrInputs a;
  a.max_step = in.get_int_or("max_step", a.max_step);
  a.stop_time = in.get_double_or("stop_time", a.stop_time);

  if (in.contains("geometry.prob_lo")) {
    const auto v = in.get_double_list("geometry.prob_lo");
    AMRIO_EXPECTS(v.size() >= 2);
    a.prob_lo = {v[0], v[1]};
  }
  if (in.contains("geometry.prob_hi")) {
    const auto v = in.get_double_list("geometry.prob_hi");
    AMRIO_EXPECTS(v.size() >= 2);
    a.prob_hi = {v[0], v[1]};
  }
  if (in.contains("amr.n_cell")) {
    const auto v = in.get_int_list("amr.n_cell");
    AMRIO_EXPECTS(v.size() >= 2);
    a.n_cell = {static_cast<int>(v[0]), static_cast<int>(v[1])};
  }

  a.max_level = static_cast<int>(in.get_int_or("amr.max_level", a.max_level));
  if (in.contains("amr.ref_ratio")) {
    const auto v = in.get_int_list("amr.ref_ratio");
    if (!v.empty()) a.ref_ratio = static_cast<int>(v[0]);
  }
  a.regrid_int = static_cast<int>(in.get_int_or("amr.regrid_int", a.regrid_int));
  a.blocking_factor =
      static_cast<int>(in.get_int_or("amr.blocking_factor", a.blocking_factor));
  a.max_grid_size =
      static_cast<int>(in.get_int_or("amr.max_grid_size", a.max_grid_size));
  a.grid_eff = in.get_double_or("amr.grid_eff", a.grid_eff);
  a.n_error_buf =
      static_cast<int>(in.get_int_or("amr.n_error_buf", a.n_error_buf));

  a.cfl = in.get_double_or("castro.cfl", a.cfl);
  a.init_shrink = in.get_double_or("castro.init_shrink", a.init_shrink);
  a.change_max = in.get_double_or("castro.change_max", a.change_max);
  a.do_hydro = in.get_int_or("castro.do_hydro", a.do_hydro ? 1 : 0) != 0;

  a.plot_file = in.get_string_or("amr.plot_file", a.plot_file);
  a.plot_int = in.get_int_or("amr.plot_int", a.plot_int);
  a.derive_plot_vars =
      in.get_string_or("amr.derive_plot_vars", a.derive_plot_vars);

  a.check_file = in.get_string_or("amr.check_file", a.check_file);
  a.check_int = in.get_int_or("amr.check_int", a.check_int);

  a.tag_dens_grad_rel =
      in.get_double_or("tagging.dens_grad_rel", a.tag_dens_grad_rel);
  a.tag_pres_grad_rel =
      in.get_double_or("tagging.pres_grad_rel", a.tag_pres_grad_rel);

  a.sedov_rho_ambient = in.get_double_or("sedov.rho_ambient", a.sedov_rho_ambient);
  a.sedov_p_ambient = in.get_double_or("sedov.p_ambient", a.sedov_p_ambient);
  a.sedov_blast_energy =
      in.get_double_or("sedov.blast_energy", a.sedov_blast_energy);
  a.sedov_r_init = in.get_double_or("sedov.r_init", a.sedov_r_init);
  if (in.contains("sedov.center")) {
    const auto v = in.get_double_list("sedov.center");
    AMRIO_EXPECTS(v.size() >= 2);
    a.sedov_center = {v[0], v[1]};
  }
  a.gamma = in.get_double_or("castro.gamma", a.gamma);

  a.nprocs = static_cast<int>(in.get_int_or("amrio.nprocs", a.nprocs));
  if (in.contains("amrio.distribution")) {
    a.distribution = mesh::distribution_strategy_from_string(
        in.get_string("amrio.distribution"));
  }
  return a;
}

AmrInputs AmrInputs::from_string(const std::string& text) {
  return from_inputs(util::InputsFile::from_string(text));
}

AmrInputs AmrInputs::from_file(const std::string& path) {
  return from_inputs(util::InputsFile::from_file(path));
}

AmrInputs AmrInputs::sedov_baseline() {
  // Values of the paper's Listing 2.
  AmrInputs a;
  a.max_step = 500;
  a.stop_time = 0.1;
  a.prob_lo = {0.0, 0.0};
  a.prob_hi = {1.0, 1.0};
  a.n_cell = {32, 32};
  a.max_level = 3;
  a.ref_ratio = 2;
  a.regrid_int = 2;
  a.blocking_factor = 8;
  a.max_grid_size = 256;
  a.cfl = 0.5;
  a.init_shrink = 0.01;
  a.change_max = 1.1;
  a.plot_file = "sedov_2d_cyl_in_cart_plt";
  a.plot_int = 20;
  a.check_file = "sedov_2d_cyl_in_cart_chk";
  a.check_int = -1;  // the study measures plotfiles only (paper §III-A)
  return a;
}

util::InputsFile AmrInputs::to_inputs() const {
  util::InputsFile f;
  f.set("max_step", max_step);
  f.set("stop_time", stop_time);
  f.set("geometry.prob_lo",
        std::to_string(prob_lo[0]) + " " + std::to_string(prob_lo[1]));
  f.set("geometry.prob_hi",
        std::to_string(prob_hi[0]) + " " + std::to_string(prob_hi[1]));
  f.set_list("amr.n_cell", {n_cell[0], n_cell[1]});
  f.set("amr.max_level", static_cast<std::int64_t>(max_level));
  f.set_list("amr.ref_ratio", {ref_ratio, ref_ratio, ref_ratio, ref_ratio});
  f.set("amr.regrid_int", static_cast<std::int64_t>(regrid_int));
  f.set("amr.blocking_factor", static_cast<std::int64_t>(blocking_factor));
  f.set("amr.max_grid_size", static_cast<std::int64_t>(max_grid_size));
  f.set("amr.grid_eff", grid_eff);
  f.set("amr.n_error_buf", static_cast<std::int64_t>(n_error_buf));
  f.set("castro.cfl", cfl);
  f.set("castro.init_shrink", init_shrink);
  f.set("castro.change_max", change_max);
  f.set("castro.do_hydro", static_cast<std::int64_t>(do_hydro ? 1 : 0));
  f.set("amr.plot_file", plot_file);
  f.set("amr.plot_int", plot_int);
  f.set("amr.derive_plot_vars", derive_plot_vars);
  f.set("amr.check_file", check_file);
  f.set("amr.check_int", check_int);
  f.set("tagging.dens_grad_rel", tag_dens_grad_rel);
  f.set("tagging.pres_grad_rel", tag_pres_grad_rel);
  f.set("sedov.rho_ambient", sedov_rho_ambient);
  f.set("sedov.p_ambient", sedov_p_ambient);
  f.set("sedov.blast_energy", sedov_blast_energy);
  f.set("sedov.r_init", sedov_r_init);
  f.set("sedov.center",
        std::to_string(sedov_center[0]) + " " + std::to_string(sedov_center[1]));
  f.set("castro.gamma", gamma);
  f.set("amrio.nprocs", static_cast<std::int64_t>(nprocs));
  f.set("amrio.distribution", std::string(mesh::to_string(distribution)));
  return f;
}

void AmrInputs::validate() const {
  AMRIO_EXPECTS_MSG(n_cell[0] >= 8 && n_cell[1] >= 8,
                    "amr.n_cell must be at least 8x8");
  AMRIO_EXPECTS_MSG(prob_hi[0] > prob_lo[0] && prob_hi[1] > prob_lo[1],
                    "geometry.prob_hi must exceed prob_lo");
  AMRIO_EXPECTS_MSG(max_level >= 0 && max_level <= 8,
                    "amr.max_level out of range [0,8]");
  AMRIO_EXPECTS_MSG(ref_ratio == 2 || ref_ratio == 4,
                    "amr.ref_ratio must be 2 or 4");
  AMRIO_EXPECTS_MSG(regrid_int >= 1, "amr.regrid_int must be >= 1");
  AMRIO_EXPECTS_MSG(blocking_factor >= 1 &&
                        (blocking_factor & (blocking_factor - 1)) == 0,
                    "amr.blocking_factor must be a power of two");
  AMRIO_EXPECTS_MSG(max_grid_size >= blocking_factor,
                    "amr.max_grid_size must be >= blocking_factor");
  AMRIO_EXPECTS_MSG(n_cell[0] % blocking_factor == 0 &&
                        n_cell[1] % blocking_factor == 0,
                    "amr.n_cell must be a multiple of blocking_factor");
  AMRIO_EXPECTS_MSG(cfl > 0.0 && cfl <= 1.0, "castro.cfl must be in (0,1]");
  AMRIO_EXPECTS_MSG(init_shrink > 0.0 && init_shrink <= 1.0,
                    "castro.init_shrink must be in (0,1]");
  AMRIO_EXPECTS_MSG(change_max >= 1.0, "castro.change_max must be >= 1");
  AMRIO_EXPECTS_MSG(max_step >= 0, "max_step must be >= 0");
  AMRIO_EXPECTS_MSG(stop_time > 0.0, "stop_time must be positive");
  AMRIO_EXPECTS_MSG(nprocs >= 1, "amrio.nprocs must be >= 1");
  AMRIO_EXPECTS_MSG(sedov_r_init > 0.0, "sedov.r_init must be positive");
  AMRIO_EXPECTS_MSG(gamma > 1.0, "castro.gamma must exceed 1");
}

}  // namespace amrio::amr

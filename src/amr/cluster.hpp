#pragma once
/// \file cluster.hpp
/// Berger–Rigoutsos grid generation: turn a set of tagged (coarse-level)
/// cells into the next level's BoxArray. Implements the signature/hole/
/// inflection splitting of the original algorithm, then AMReX's post-passes:
/// blocking-factor alignment, domain clipping, proper nesting inside the
/// parent level, overlap removal, and max_grid_size chopping.

#include <vector>

#include "mesh/boxarray.hpp"

namespace amrio::amr {

struct ClusterParams {
  double efficiency = 0.7;  ///< target fraction of tagged cells per box
  int blocking_factor = 8;  ///< fine-level blocking factor
  int max_grid_size = 256;  ///< fine-level max box side
  int ref_ratio = 2;
  int error_buf = 1;        ///< grow tags by this many coarse cells
};

/// Raw Berger–Rigoutsos clustering (no alignment/nesting): cover `tags` with
/// boxes at the given efficiency. Exposed for unit testing.
std::vector<mesh::Box> berger_rigoutsos(std::vector<mesh::IntVect> tags,
                                        double efficiency, int min_width);

/// Full grid generation: tags (level-l index space) -> level-(l+1) BoxArray.
/// `domain` is level-l's domain box; `parents` level-l's BoxArray (new grids
/// are clipped to nest inside it). The result is disjoint, refined by
/// ref_ratio, and each box obeys max_grid_size.
mesh::BoxArray make_fine_grids(const std::vector<mesh::IntVect>& tags,
                               const mesh::Box& domain,
                               const mesh::BoxArray& parents,
                               const ClusterParams& params);

}  // namespace amrio::amr

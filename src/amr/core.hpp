#pragma once
/// \file core.hpp
/// The Castro-like AMR driver: owns the level hierarchy, advances the Sedov
/// hydrodynamics under CFL timestep control, regrids every `amr.regrid_int`
/// steps, and schedules plotfile output every `amr.plot_int` steps — the
/// workload whose I/O the paper characterizes.
///
/// Deviations from Castro (see DESIGN.md §2): levels advance non-subcycled
/// with a single global dt, and coarse-fine flux refluxing is omitted. Both
/// leave the AMR hierarchy dynamics — and therefore the I/O footprint — intact.

#include <functional>
#include <vector>

#include "amr/cluster.hpp"
#include "amr/inputs.hpp"
#include "amr/tagging.hpp"
#include "hydro/sedov.hpp"
#include "hydro/solver.hpp"
#include "mesh/geometry.hpp"
#include "mesh/multifab.hpp"

namespace amrio::amr {

/// One AMR level: its geometry and conserved-state MultiFab.
struct AmrLevel {
  mesh::Geometry geom;
  mesh::MultiFab state;
};

/// Per-step bookkeeping the campaign layer turns into Figs. 5–8.
struct StepRecord {
  std::int64_t step = 0;
  double time = 0.0;
  double dt = 0.0;
  std::vector<std::int64_t> cells_per_level;
  std::vector<std::int64_t> grids_per_level;
  bool plotted = false;
};

class AmrCore {
 public:
  explicit AmrCore(AmrInputs inputs);
  AmrCore(const AmrCore&) = delete;
  AmrCore& operator=(const AmrCore&) = delete;

  /// Build level 0 and the initial refinement cascade from the analytic IC.
  void init();

  int finest_level() const { return static_cast<int>(levels_.size()) - 1; }
  int num_levels() const { return static_cast<int>(levels_.size()); }
  const AmrLevel& level(int l) const { return levels_.at(static_cast<std::size_t>(l)); }
  const AmrInputs& inputs() const { return inputs_; }
  const hydro::HydroSolver& solver() const { return solver_; }
  std::int64_t step() const { return step_; }
  double time() const { return time_; }
  const std::vector<StepRecord>& history() const { return history_; }

  /// CFL-limited dt over all levels with Castro's init_shrink / change_max
  /// ramp controls applied; clamped so time never overshoots stop_time.
  double compute_dt() const;

  /// Advance every level by dt (coarse to fine, then average down).
  void advance(double dt);

  /// Re-tag and rebuild levels 1..max_level from the current solution.
  void regrid();

  /// Castro writes a plotfile at step 0 and then every plot_int steps.
  bool should_plot(std::int64_t step) const;
  /// Plotfile directory name for a step, e.g. "sedov_2d_cyl_in_cart_plt00020".
  std::string plotfile_name(std::int64_t step) const;

  /// Called whenever a plotfile is due. The hook receives the core so it can
  /// pull derived state; AmrCore itself never touches storage.
  using PlotHook = std::function<void(const AmrCore&, std::int64_t step, double time)>;

  /// Run the full time loop (init() implied if not yet done). `on_plot` fires
  /// at plotfile steps (step 0 and every plot_int); `on_step` fires at every
  /// step including 0 — checkpoint writers and other side channels hang off
  /// it independently of the plot schedule.
  void run(const PlotHook& on_plot = {}, const PlotHook& on_step = {});

  /// Derived plot variables (hydro::plot_var_names()) for one level.
  mesh::MultiFab derive_level(int l) const;

  /// Total valid cells on a level.
  std::int64_t level_cells(int l) const { return level(l).state.num_pts(); }

 private:
  void fill_ghosts(int l);
  /// Piecewise-constant prolongation of level l-1 data into `dest` cells
  /// (valid + in-domain ghosts) of level l structure.
  void interp_from_coarse(int l_fine, mesh::MultiFab& dest) const;
  void average_down();
  mesh::DistributionMapping make_dm(const mesh::BoxArray& ba) const;
  void record_step(double dt, bool plotted);
  ClusterParams cluster_params() const;

  AmrInputs inputs_;
  hydro::HydroSolver solver_;
  hydro::SedovParams sedov_;
  TaggingParams tagging_;
  std::vector<AmrLevel> levels_;
  std::int64_t step_ = 0;
  double time_ = 0.0;
  double last_dt_ = -1.0;
  bool initialized_ = false;
  std::vector<StepRecord> history_;
};

}  // namespace amrio::amr

#pragma once
/// \file inputs.hpp
/// Typed view of a Castro/AMReX inputs file. Parses the exact key set of the
/// paper's Listing 2 (`inputs.2d.cyl_in_cartcoords`) plus the paper's Table I
/// sweep parameters, and a small `amrio.*` extension namespace for the things
/// Summit's job launcher provided externally (virtual rank count, etc.).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mesh/distribution.hpp"
#include "util/inputs.hpp"

namespace amrio::amr {

struct AmrInputs {
  // -- INPUTS TO MAIN PROGRAM
  std::int64_t max_step = 500;
  double stop_time = 0.1;

  // -- PROBLEM SIZE & GEOMETRY
  std::array<double, 2> prob_lo{0.0, 0.0};
  std::array<double, 2> prob_hi{1.0, 1.0};
  std::array<int, 2> n_cell{32, 32};

  // -- REFINEMENT / REGRIDDING (Table I: amr.max_level)
  int max_level = 3;              ///< finest allowed level index
  int ref_ratio = 2;
  int regrid_int = 2;
  int blocking_factor = 8;
  int max_grid_size = 256;
  double grid_eff = 0.7;          ///< amr.grid_eff clustering efficiency
  int n_error_buf = 1;            ///< tag buffer cells

  // -- TIME STEP CONTROL (Table I: castro.cfl)
  double cfl = 0.5;
  double init_shrink = 0.01;
  double change_max = 1.1;

  // -- WHICH PHYSICS
  bool do_hydro = true;

  // -- PLOTFILES (Table I: amr.plot_int)
  std::string plot_file = "sedov_2d_cyl_in_cart_plt";
  std::int64_t plot_int = 20;
  std::string derive_plot_vars = "ALL";

  // -- CHECKPOINT FILES
  std::string check_file = "sedov_2d_cyl_in_cart_chk";
  std::int64_t check_int = -1;   ///< <=0 disables checkpoints

  // -- tagging thresholds (Castro keeps these in the probin file; we keep
  //    them in the same inputs file under `tagging.*`)
  double tag_dens_grad_rel = 0.25;
  double tag_pres_grad_rel = 0.25;

  // -- Sedov problem setup (Castro's probin equivalent, `sedov.*`)
  double sedov_rho_ambient = 1.0;
  double sedov_p_ambient = 1.0e-5;
  double sedov_blast_energy = 1.0;
  double sedov_r_init = 0.01;
  std::array<double, 2> sedov_center{0.5, 0.5};
  double gamma = 1.4;

  // -- amrio extensions: what `jsrun -n nprocs` provided on Summit
  int nprocs = 1;                 ///< virtual MPI ranks (amrio.nprocs)
  mesh::DistributionStrategy distribution =
      mesh::DistributionStrategy::kSfc;  ///< amrio.distribution

  /// Parse from inputs-file text/path. Unknown keys are ignored (AMReX
  /// semantics: codes read only the keys they know).
  static AmrInputs from_inputs(const util::InputsFile& in);
  static AmrInputs from_string(const std::string& text);
  static AmrInputs from_file(const std::string& path);

  /// The paper's Listing 2 baseline configuration.
  static AmrInputs sedov_baseline();

  /// Serialize to inputs-file form (round-trips through from_string).
  util::InputsFile to_inputs() const;

  /// Throw ContractViolation on inconsistent values (negative sizes, cfl out
  /// of (0,1], blocking factor not dividing n_cell, ...).
  void validate() const;

  /// Total level-0 cells (the `ncells` of the paper's Eq. (1)).
  std::int64_t ncells0() const {
    return static_cast<std::int64_t>(n_cell[0]) * n_cell[1];
  }
};

}  // namespace amrio::amr

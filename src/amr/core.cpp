#include "amr/core.hpp"

#include <algorithm>
#include <cmath>

#include "hydro/bc.hpp"
#include "hydro/derive.hpp"
#include "util/assert.hpp"
#include "util/format.hpp"
#include "util/log.hpp"

namespace amrio::amr {

AmrCore::AmrCore(AmrInputs inputs)
    : inputs_(std::move(inputs)),
      solver_(hydro::SolverOptions{inputs_.gamma, true}) {
  inputs_.validate();
  sedov_.rho_ambient = inputs_.sedov_rho_ambient;
  sedov_.p_ambient = inputs_.sedov_p_ambient;
  sedov_.blast_energy = inputs_.sedov_blast_energy;
  sedov_.r_init = inputs_.sedov_r_init;
  sedov_.center = inputs_.sedov_center;
  sedov_.gamma = inputs_.gamma;
  tagging_.dens_grad_rel = inputs_.tag_dens_grad_rel;
  tagging_.pres_grad_rel = inputs_.tag_pres_grad_rel;
}

ClusterParams AmrCore::cluster_params() const {
  ClusterParams p;
  p.efficiency = inputs_.grid_eff;
  p.blocking_factor = inputs_.blocking_factor;
  p.max_grid_size = inputs_.max_grid_size;
  p.ref_ratio = inputs_.ref_ratio;
  p.error_buf = inputs_.n_error_buf;
  return p;
}

mesh::DistributionMapping AmrCore::make_dm(const mesh::BoxArray& ba) const {
  return mesh::DistributionMapping::make(ba, inputs_.nprocs,
                                         inputs_.distribution);
}

void AmrCore::init() {
  AMRIO_EXPECTS_MSG(!initialized_, "AmrCore::init called twice");
  levels_.clear();

  const mesh::Box domain0(mesh::IntVect(0, 0),
                          mesh::IntVect(inputs_.n_cell[0] - 1, inputs_.n_cell[1] - 1));
  const mesh::Geometry geom0(domain0, inputs_.prob_lo, inputs_.prob_hi);
  mesh::BoxArray ba0 =
      mesh::BoxArray(domain0).max_size(inputs_.max_grid_size,
                                       inputs_.blocking_factor);
  levels_.push_back(AmrLevel{
      geom0, mesh::MultiFab(ba0, make_dm(ba0), hydro::kNCons, hydro::kGhost)});
  auto& l0 = levels_.back();
  for (std::size_t b = 0; b < l0.state.nfabs(); ++b)
    hydro::init_sedov(l0.state.fab(b), l0.state.valid_box(b), l0.geom, sedov_);
  fill_ghosts(0);

  // Initial refinement cascade: each new level is filled from the analytic
  // initial condition at its own resolution, exactly as Castro does.
  for (int l = 0; l < inputs_.max_level; ++l) {
    fill_ghosts(l);
    const auto tags = tag_cells(levels_[static_cast<std::size_t>(l)].state,
                                solver_.eos(), tagging_);
    const auto ba = make_fine_grids(
        tags, levels_[static_cast<std::size_t>(l)].geom.domain(),
        levels_[static_cast<std::size_t>(l)].state.box_array(), cluster_params());
    if (ba.empty()) break;
    const mesh::Geometry geom =
        levels_[static_cast<std::size_t>(l)].geom.refine(inputs_.ref_ratio);
    levels_.push_back(AmrLevel{
        geom, mesh::MultiFab(ba, make_dm(ba), hydro::kNCons, hydro::kGhost)});
    auto& lev = levels_.back();
    for (std::size_t b = 0; b < lev.state.nfabs(); ++b)
      hydro::init_sedov(lev.state.fab(b), lev.state.valid_box(b), lev.geom, sedov_);
    fill_ghosts(l + 1);
  }
  average_down();
  initialized_ = true;
  AMRIO_LOG_INFO("AmrCore initialized with " << levels_.size() << " levels");
}

double AmrCore::compute_dt() const {
  AMRIO_EXPECTS(initialized_);
  double dt = std::numeric_limits<double>::infinity();
  for (const auto& lev : levels_) {
    const double dx = lev.geom.cell_size(0);
    const double dy = lev.geom.cell_size(1);
    for (std::size_t b = 0; b < lev.state.nfabs(); ++b) {
      dt = std::min(dt, solver_.max_stable_dt(lev.state.fab(b),
                                              lev.state.valid_box(b), dx, dy));
    }
  }
  dt *= inputs_.cfl;
  if (last_dt_ < 0.0) {
    dt *= inputs_.init_shrink;
  } else {
    dt = std::min(dt, inputs_.change_max * last_dt_);
  }
  // Do not overshoot stop_time (Castro clamps the final step the same way).
  if (time_ + dt > inputs_.stop_time) dt = inputs_.stop_time - time_;
  AMRIO_ENSURES(dt > 0.0 && std::isfinite(dt));
  return dt;
}

void AmrCore::fill_ghosts(int l) {
  auto& lev = levels_[static_cast<std::size_t>(l)];
  if (l > 0) interp_from_coarse(l, lev.state);
  lev.state.fill_boundary();
  for (std::size_t b = 0; b < lev.state.nfabs(); ++b)
    hydro::fill_domain_boundary(lev.state.fab(b), lev.geom.domain(),
                                hydro::BcType::kOutflow);
}

void AmrCore::interp_from_coarse(int l_fine, mesh::MultiFab& dest) const {
  AMRIO_EXPECTS(l_fine >= 1);
  const auto& coarse = levels_[static_cast<std::size_t>(l_fine - 1)];
  const mesh::Box fine_domain =
      coarse.geom.domain().refine(inputs_.ref_ratio);
  const auto& cba = coarse.state.box_array();

  for (std::size_t b = 0; b < dest.nfabs(); ++b) {
    mesh::Fab& fab = dest.fab(b);
    const mesh::Box region = fab.box() & fine_domain;
    std::size_t hint = 0;  // coarse boxes are spatially coherent; cache lookups
    for (int j = region.lo(1); j <= region.hi(1); ++j) {
      for (int i = region.lo(0); i <= region.hi(0); ++i) {
        const mesh::IntVect fp{i, j};
        const mesh::IntVect cp{mesh::coarsen_index(i, inputs_.ref_ratio),
                               mesh::coarsen_index(j, inputs_.ref_ratio)};
        // find owning coarse fab
        std::size_t found = cba.size();
        for (std::size_t k = 0; k < cba.size(); ++k) {
          const std::size_t idx = (hint + k) % cba.size();
          if (cba[idx].contains(cp)) {
            found = idx;
            break;
          }
        }
        if (found == cba.size()) continue;  // under a domain-boundary ghost
        hint = found;
        const mesh::Fab& cfab = coarse.state.fab(found);
        for (int n = 0; n < dest.ncomp(); ++n) fab(fp, n) = cfab(cp, n);
      }
    }
  }
}

void AmrCore::average_down() {
  const int r = inputs_.ref_ratio;
  const double inv = 1.0 / (r * r);
  for (int l = finest_level(); l >= 1; --l) {
    const auto& fine = levels_[static_cast<std::size_t>(l)].state;
    auto& coarse = levels_[static_cast<std::size_t>(l - 1)].state;
    for (std::size_t fb = 0; fb < fine.nfabs(); ++fb) {
      const mesh::Box cregion = fine.valid_box(fb).coarsen(r);
      for (std::size_t cb = 0; cb < coarse.nfabs(); ++cb) {
        const mesh::Box overlap = cregion & coarse.valid_box(cb);
        if (overlap.empty()) continue;
        mesh::Fab& cfab = coarse.fab(cb);
        const mesh::Fab& ffab = fine.fab(fb);
        for (int n = 0; n < coarse.ncomp(); ++n) {
          for (int cj = overlap.lo(1); cj <= overlap.hi(1); ++cj) {
            for (int ci = overlap.lo(0); ci <= overlap.hi(0); ++ci) {
              double acc = 0.0;
              for (int jj = 0; jj < r; ++jj)
                for (int ii = 0; ii < r; ++ii)
                  acc += ffab({ci * r + ii, cj * r + jj}, n);
              cfab({ci, cj}, n) = acc * inv;
            }
          }
        }
      }
    }
  }
}

void AmrCore::advance(double dt) {
  AMRIO_EXPECTS(initialized_);
  AMRIO_EXPECTS(dt > 0.0);
  for (int l = 0; l <= finest_level(); ++l) {
    fill_ghosts(l);
    auto& lev = levels_[static_cast<std::size_t>(l)];
    const double dx = lev.geom.cell_size(0);
    const double dy = lev.geom.cell_size(1);
    for (std::size_t b = 0; b < lev.state.nfabs(); ++b)
      solver_.advance(lev.state.fab(b), lev.state.valid_box(b), dx, dy, dt);
  }
  average_down();
  ++step_;
  time_ += dt;
  last_dt_ = dt;
}

void AmrCore::regrid() {
  AMRIO_EXPECTS(initialized_);
  for (int l = 0; l <= std::min(finest_level(), inputs_.max_level - 1); ++l) {
    fill_ghosts(l);
    auto& clevel = levels_[static_cast<std::size_t>(l)];
    const auto tags = tag_cells(clevel.state, solver_.eos(), tagging_);
    const auto new_ba = make_fine_grids(tags, clevel.geom.domain(),
                                        clevel.state.box_array(), cluster_params());
    const bool have_finer = l + 1 <= finest_level();
    if (new_ba.empty()) {
      if (have_finer) {
        levels_.erase(levels_.begin() + l + 1, levels_.end());
        AMRIO_LOG_DEBUG("regrid: removed levels above " << l);
      }
      break;
    }
    if (have_finer &&
        new_ba == levels_[static_cast<std::size_t>(l + 1)].state.box_array()) {
      continue;  // unchanged
    }
    const mesh::Geometry geom = clevel.geom.refine(inputs_.ref_ratio);
    mesh::MultiFab fresh(new_ba, make_dm(new_ba), hydro::kNCons, hydro::kGhost);
    interp_from_coarse(l + 1, fresh);
    if (have_finer)
      fresh.copy_valid_from(levels_[static_cast<std::size_t>(l + 1)].state, 0, 0,
                            hydro::kNCons);
    if (have_finer) {
      levels_[static_cast<std::size_t>(l + 1)] = AmrLevel{geom, std::move(fresh)};
    } else {
      levels_.push_back(AmrLevel{geom, std::move(fresh)});
    }
    fill_ghosts(l + 1);
  }
  average_down();
}

bool AmrCore::should_plot(std::int64_t step) const {
  if (inputs_.plot_int <= 0) return false;
  return step % inputs_.plot_int == 0;
}

std::string AmrCore::plotfile_name(std::int64_t step) const {
  return inputs_.plot_file + util::zero_pad(static_cast<std::uint64_t>(step), 5);
}

void AmrCore::record_step(double dt, bool plotted) {
  StepRecord rec;
  rec.step = step_;
  rec.time = time_;
  rec.dt = dt;
  rec.plotted = plotted;
  for (const auto& lev : levels_) {
    rec.cells_per_level.push_back(lev.state.num_pts());
    rec.grids_per_level.push_back(static_cast<std::int64_t>(lev.state.nfabs()));
  }
  history_.push_back(std::move(rec));
}

void AmrCore::run(const PlotHook& on_plot, const PlotHook& on_step) {
  if (!initialized_) init();

  // Castro writes the initial plotfile (plt00000) before the first step.
  const bool plot0 = should_plot(0);
  if (plot0 && on_plot) on_plot(*this, 0, time_);
  if (on_step) on_step(*this, 0, time_);
  record_step(0.0, plot0);

  while (step_ < inputs_.max_step && time_ < inputs_.stop_time) {
    const double dt = compute_dt();
    advance(dt);
    if (step_ % inputs_.regrid_int == 0) regrid();
    const bool plotted = should_plot(step_);
    if (plotted && on_plot) on_plot(*this, step_, time_);
    if (on_step) on_step(*this, step_, time_);
    record_step(dt, plotted);
    AMRIO_LOG_DEBUG("step " << step_ << " t=" << time_ << " dt=" << dt
                            << " levels=" << levels_.size());
  }
}

mesh::MultiFab AmrCore::derive_level(int l) const {
  const auto& lev = levels_.at(static_cast<std::size_t>(l));
  mesh::MultiFab out(lev.state.box_array(), lev.state.distribution(),
                     hydro::num_plot_vars(), 0);
  for (std::size_t b = 0; b < out.nfabs(); ++b) {
    hydro::derive_plot_vars(lev.state.fab(b), lev.state.valid_box(b), out.fab(b),
                            solver_.eos());
  }
  return out;
}

}  // namespace amrio::amr

#include "amr/cluster.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace amrio::amr {

namespace {

mesh::Box bounding(const std::vector<mesh::IntVect>& tags) {
  mesh::Box b;
  for (const auto& t : tags)
    b = bounding_box(b, mesh::Box(t, t));
  return b;
}

/// Tag count along `dir` within box `b` ("signature" of Berger–Rigoutsos).
std::vector<int> signature(const std::vector<mesh::IntVect>& tags,
                           const mesh::Box& b, int dir) {
  std::vector<int> sig(static_cast<std::size_t>(b.length(dir)), 0);
  for (const auto& t : tags)
    ++sig[static_cast<std::size_t>(t[dir] - b.lo(dir))];
  return sig;
}

/// Best split index within [lo+1, hi] along dir, or -1 when no good cut.
/// Preference: interior hole in the signature, then the strongest inflection
/// of its discrete Laplacian, as in the original BR algorithm.
int choose_cut(const std::vector<int>& sig, int lo) {
  const int n = static_cast<int>(sig.size());
  // Holes (zero signature) — take the one closest to the middle.
  int best_hole = -1;
  for (int i = 1; i < n - 1; ++i) {
    if (sig[static_cast<std::size_t>(i)] == 0) {
      if (best_hole < 0 ||
          std::abs(i - n / 2) < std::abs(best_hole - n / 2))
        best_hole = i;
    }
  }
  if (best_hole >= 0) return lo + best_hole;

  // Inflections: find the largest jump in the second difference.
  if (n >= 4) {
    auto lap = [&sig](int i) {
      return sig[static_cast<std::size_t>(i + 1)] -
             2 * sig[static_cast<std::size_t>(i)] +
             sig[static_cast<std::size_t>(i - 1)];
    };
    int best = -1;
    int best_mag = 0;
    for (int i = 1; i < n - 2; ++i) {
      const int change = std::abs(lap(i + 1) - lap(i));
      if (lap(i + 1) * lap(i) < 0 && change > best_mag) {
        best_mag = change;
        best = i + 1;
      }
    }
    if (best > 0 && best < n) return lo + best;
  }
  return -1;
}

void cluster_recursive(std::vector<mesh::IntVect> tags, double efficiency,
                       int min_width, int depth, std::vector<mesh::Box>& out) {
  if (tags.empty()) return;
  const mesh::Box bbox = bounding(tags);
  const double eff =
      static_cast<double>(tags.size()) / static_cast<double>(bbox.num_pts());
  const bool too_small =
      bbox.length(0) <= min_width && bbox.length(1) <= min_width;
  if (eff >= efficiency || too_small || depth > 48) {
    out.push_back(bbox);
    return;
  }

  // Try a signature cut in the longer direction first.
  int cut_dir = bbox.length(0) >= bbox.length(1) ? 0 : 1;
  int cut = -1;
  for (int attempt = 0; attempt < 2 && cut < 0; ++attempt) {
    const int d = (attempt == 0) ? cut_dir : 1 - cut_dir;
    if (bbox.length(d) < 2 * min_width) continue;
    const auto sig = signature(tags, bbox, d);
    const int c = choose_cut(sig, bbox.lo(d));
    // keep both halves at least min_width wide
    if (c >= bbox.lo(d) + min_width && c <= bbox.hi(d) + 1 - min_width) {
      cut = c;
      cut_dir = d;
    }
  }
  if (cut < 0) {
    // Fallback: bisect the longer dimension.
    cut_dir = bbox.length(0) >= bbox.length(1) ? 0 : 1;
    if (bbox.length(cut_dir) < 2) {
      out.push_back(bbox);
      return;
    }
    cut = bbox.lo(cut_dir) + static_cast<int>(bbox.length(cut_dir) / 2);
  }

  std::vector<mesh::IntVect> left;
  std::vector<mesh::IntVect> right;
  for (const auto& t : tags) {
    if (t[cut_dir] < cut) left.push_back(t);
    else right.push_back(t);
  }
  if (left.empty() || right.empty()) {
    out.push_back(bbox);  // degenerate cut; accept as-is
    return;
  }
  tags.clear();
  tags.shrink_to_fit();
  cluster_recursive(std::move(left), efficiency, min_width, depth + 1, out);
  cluster_recursive(std::move(right), efficiency, min_width, depth + 1, out);
}

}  // namespace

std::vector<mesh::Box> berger_rigoutsos(std::vector<mesh::IntVect> tags,
                                        double efficiency, int min_width) {
  AMRIO_EXPECTS(efficiency > 0.0 && efficiency <= 1.0);
  AMRIO_EXPECTS(min_width >= 1);
  std::vector<mesh::Box> out;
  cluster_recursive(std::move(tags), efficiency, min_width, 0, out);
  return out;
}

mesh::BoxArray make_fine_grids(const std::vector<mesh::IntVect>& tags,
                               const mesh::Box& domain,
                               const mesh::BoxArray& parents,
                               const ClusterParams& params) {
  AMRIO_EXPECTS(params.ref_ratio >= 2);
  AMRIO_EXPECTS(params.blocking_factor >= 1);
  if (tags.empty()) return mesh::BoxArray();

  // 1. Buffer tags so the refined region comfortably contains the feature.
  std::vector<mesh::IntVect> buffered;
  if (params.error_buf > 0) {
    std::set<mesh::IntVect> grown;
    for (const auto& t : tags) {
      for (int dj = -params.error_buf; dj <= params.error_buf; ++dj)
        for (int di = -params.error_buf; di <= params.error_buf; ++di) {
          const mesh::IntVect p{t.x + di, t.y + dj};
          if (domain.contains(p)) grown.insert(p);
        }
    }
    buffered.assign(grown.begin(), grown.end());
  } else {
    buffered = tags;
  }

  // 2. Cluster in the coarse index space. The fine blocking factor maps to
  //    blocking_factor / ref_ratio at the coarse level.
  const int coarse_blocking =
      std::max(1, params.blocking_factor / params.ref_ratio);
  auto raw = berger_rigoutsos(std::move(buffered), params.efficiency,
                              coarse_blocking);

  // 3. Align, clip to domain, nest inside parents, and remove overlap.
  std::vector<mesh::Box> accepted;
  for (const auto& b : raw) {
    const mesh::Box aligned = b.align_to(coarse_blocking) & domain;
    if (aligned.empty()) continue;
    // subtract already-accepted boxes to keep the set disjoint
    std::vector<mesh::Box> pieces{aligned};
    for (const auto& prev : accepted) {
      std::vector<mesh::Box> next;
      for (const auto& piece : pieces) {
        auto diff = box_difference(piece, prev);
        next.insert(next.end(), diff.begin(), diff.end());
      }
      pieces = std::move(next);
      if (pieces.empty()) break;
    }
    // clip every piece against the parent level for proper nesting
    for (const auto& piece : pieces) {
      for (const auto& parent : parents.boxes()) {
        const mesh::Box nested = piece & parent;
        if (!nested.empty()) accepted.push_back(nested);
      }
    }
  }
  if (accepted.empty()) return mesh::BoxArray();

  // 4. Refine to the fine level and enforce max_grid_size.
  mesh::BoxArray fine(std::move(accepted));
  fine = fine.refine(params.ref_ratio);
  fine = fine.max_size(params.max_grid_size, params.blocking_factor);
  AMRIO_ENSURES(fine.is_disjoint());
  return fine;
}

}  // namespace amrio::amr

#pragma once
/// \file tagging.hpp
/// Error estimation: mark cells whose local density/pressure gradients exceed
/// relative thresholds. Castro's Sedov setup tags on exactly these two fields;
/// the tagged annulus tracks the blast front, which is what makes refined-
/// level output grow nonlinearly over time (the effect the paper models).

#include <vector>

#include "hydro/eos.hpp"
#include "mesh/multifab.hpp"

namespace amrio::amr {

struct TaggingParams {
  double dens_grad_rel = 0.25;  ///< tag when |Δρ|/ρ exceeds this
  double pres_grad_rel = 0.25;  ///< tag when |Δp|/p exceeds this
};

/// Tag valid cells of `state` (conserved components, ghosts filled) whose
/// undivided relative gradient of density or pressure exceeds the thresholds.
/// Returns cell indices in the level's index space, sorted, unique.
std::vector<mesh::IntVect> tag_cells(const mesh::MultiFab& state,
                                     const hydro::GammaLawEos& eos,
                                     const TaggingParams& params);

}  // namespace amrio::amr

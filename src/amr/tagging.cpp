#include "amr/tagging.hpp"

#include <algorithm>
#include <cmath>

#include "hydro/state.hpp"
#include "util/assert.hpp"

namespace amrio::amr {

namespace {
hydro::Prim prim_at(const mesh::Fab& f, mesh::IntVect p,
                    const hydro::GammaLawEos& eos) {
  hydro::Cons c{f(p, hydro::kURho), f(p, hydro::kUMx), f(p, hydro::kUMy),
                f(p, hydro::kUEden)};
  return eos.to_prim(c);
}
}  // namespace

std::vector<mesh::IntVect> tag_cells(const mesh::MultiFab& state,
                                     const hydro::GammaLawEos& eos,
                                     const TaggingParams& params) {
  AMRIO_EXPECTS_MSG(state.nghost() >= 1, "tagging needs one ghost cell");
  std::vector<mesh::IntVect> tags;
  for (std::size_t b = 0; b < state.nfabs(); ++b) {
    const mesh::Fab& fab = state.fab(b);
    const mesh::Box valid = state.valid_box(b);
    for (int j = valid.lo(1); j <= valid.hi(1); ++j) {
      for (int i = valid.lo(0); i <= valid.hi(0); ++i) {
        const mesh::IntVect p{i, j};
        const hydro::Prim q0 = prim_at(fab, p, eos);
        bool tagged = false;
        for (int dir = 0; dir < mesh::kSpaceDim && !tagged; ++dir) {
          const mesh::IntVect unit =
              (dir == 0) ? mesh::IntVect(1, 0) : mesh::IntVect(0, 1);
          const hydro::Prim qm = prim_at(fab, p - unit, eos);
          const hydro::Prim qp = prim_at(fab, p + unit, eos);
          const double drho =
              std::max(std::abs(qp.rho - q0.rho), std::abs(q0.rho - qm.rho));
          const double dp =
              std::max(std::abs(qp.p - q0.p), std::abs(q0.p - qm.p));
          if (drho / std::max(q0.rho, hydro::kRhoFloor) > params.dens_grad_rel)
            tagged = true;
          if (dp / std::max(q0.p, hydro::kPressureFloor) > params.pres_grad_rel)
            tagged = true;
        }
        if (tagged) tags.push_back(p);
      }
    }
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  return tags;
}

}  // namespace amrio::amr
